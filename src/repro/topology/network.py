"""Core network model: PoPs, routers, links, customers.

The model mirrors the pieces of the Abilene measurement infrastructure the
paper relies on:

* a **PoP** (point of presence) is the aggregation level of OD flows;
* each PoP hosts one or more backbone **routers** where sampled flow records
  are collected;
* **links** connect routers (and give the IGP its weighted graph);
* **customers** and peers attach to PoPs through access interfaces, and own
  address prefixes — this is what ingress/egress resolution works from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

import networkx as nx

from repro.utils.validation import require

__all__ = ["PoP", "Router", "Link", "Customer", "Network"]


@dataclass(frozen=True)
class PoP:
    """A point of presence in the backbone.

    Parameters
    ----------
    name:
        Short identifier (e.g. ``"LOSA"``).
    city:
        Human-readable location.
    region_weight:
        Relative size of the population/traffic served by the PoP; used by
        the gravity model to set OD flow means.
    """

    name: str
    city: str = ""
    region_weight: float = 1.0

    def __post_init__(self) -> None:
        require(bool(self.name), "PoP name must be non-empty")
        require(self.region_weight > 0, "region_weight must be positive")


@dataclass(frozen=True)
class Router:
    """A backbone router located at a PoP."""

    name: str
    pop: str

    def __post_init__(self) -> None:
        require(bool(self.name), "Router name must be non-empty")
        require(bool(self.pop), "Router must belong to a PoP")


@dataclass(frozen=True)
class Link:
    """A unidirectional backbone link between two routers.

    ``igp_weight`` is the IS-IS metric used by shortest-path routing;
    ``capacity_bps`` is informational (used by examples, not by detection).
    """

    source: str
    target: str
    igp_weight: float = 1.0
    capacity_bps: float = 10e9

    def __post_init__(self) -> None:
        require(self.source != self.target, "Link endpoints must differ")
        require(self.igp_weight > 0, "igp_weight must be positive")
        require(self.capacity_bps > 0, "capacity_bps must be positive")


@dataclass(frozen=True)
class Customer:
    """A customer or peer network attached to a PoP.

    Customers own address prefixes; the PoP resolver maps a flow's source
    address to its ingress PoP through the customer attachment, and the
    destination address to its egress PoP through BGP.  ``multihomed_pops``
    lists alternative attachment points (used by the INGRESS-SHIFT anomaly).
    """

    name: str
    pop: str
    prefixes: Tuple[str, ...] = ()
    weight: float = 1.0
    multihomed_pops: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        require(bool(self.name), "Customer name must be non-empty")
        require(bool(self.pop), "Customer must attach to a PoP")
        require(self.weight > 0, "Customer weight must be positive")

    @property
    def attachment_pops(self) -> Tuple[str, ...]:
        """All PoPs the customer can use, primary first."""
        extra = tuple(p for p in self.multihomed_pops if p != self.pop)
        return (self.pop, *extra)


class Network:
    """A backbone network: PoPs, routers, links, and attached customers.

    The class is a thin, validated container with convenience queries;
    routing and traffic logic live in their own subpackages.
    """

    def __init__(
        self,
        pops: Sequence[PoP],
        routers: Sequence[Router] = (),
        links: Sequence[Link] = (),
        customers: Sequence[Customer] = (),
        name: str = "backbone",
    ) -> None:
        require(len(pops) >= 2, "a network needs at least two PoPs")
        self.name = name
        self._pops: Dict[str, PoP] = {}
        for pop in pops:
            if pop.name in self._pops:
                raise ValueError(f"duplicate PoP name {pop.name!r}")
            self._pops[pop.name] = pop

        self._routers: Dict[str, Router] = {}
        for router in routers:
            if router.name in self._routers:
                raise ValueError(f"duplicate router name {router.name!r}")
            if router.pop not in self._pops:
                raise ValueError(f"router {router.name!r} references unknown PoP {router.pop!r}")
            self._routers[router.name] = router

        # By default every PoP has one backbone router named after it.
        for pop in self._pops.values():
            default_router = f"{pop.name}-rtr"
            if not any(r.pop == pop.name for r in self._routers.values()):
                self._routers[default_router] = Router(name=default_router, pop=pop.name)

        self._links: List[Link] = []
        for link in links:
            self._validate_link(link)
            self._links.append(link)

        self._customers: Dict[str, Customer] = {}
        for customer in customers:
            if customer.name in self._customers:
                raise ValueError(f"duplicate customer name {customer.name!r}")
            for pop_name in customer.attachment_pops:
                if pop_name not in self._pops:
                    raise ValueError(
                        f"customer {customer.name!r} references unknown PoP {pop_name!r}"
                    )
            self._customers[customer.name] = customer

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def pops(self) -> List[PoP]:
        """PoPs in insertion order."""
        return list(self._pops.values())

    @property
    def pop_names(self) -> List[str]:
        """Names of all PoPs, in insertion order."""
        return list(self._pops.keys())

    @property
    def routers(self) -> List[Router]:
        """All backbone routers."""
        return list(self._routers.values())

    @property
    def links(self) -> List[Link]:
        """All unidirectional backbone links."""
        return list(self._links)

    @property
    def customers(self) -> List[Customer]:
        """All attached customers/peers."""
        return list(self._customers.values())

    @property
    def n_pops(self) -> int:
        """Number of PoPs."""
        return len(self._pops)

    @property
    def n_od_pairs(self) -> int:
        """Number of OD pairs, including the self pairs (paper: 11² = 121)."""
        return self.n_pops * self.n_pops

    def pop(self, name: str) -> PoP:
        """Look up a PoP by name."""
        try:
            return self._pops[name]
        except KeyError:
            raise KeyError(f"unknown PoP {name!r}") from None

    def router(self, name: str) -> Router:
        """Look up a router by name."""
        try:
            return self._routers[name]
        except KeyError:
            raise KeyError(f"unknown router {name!r}") from None

    def customer(self, name: str) -> Customer:
        """Look up a customer by name."""
        try:
            return self._customers[name]
        except KeyError:
            raise KeyError(f"unknown customer {name!r}") from None

    def routers_at(self, pop_name: str) -> List[Router]:
        """All routers located at *pop_name*."""
        self.pop(pop_name)
        return [r for r in self._routers.values() if r.pop == pop_name]

    def customers_at(self, pop_name: str) -> List[Customer]:
        """Customers primarily attached at *pop_name*."""
        self.pop(pop_name)
        return [c for c in self._customers.values() if c.pop == pop_name]

    def od_pairs(self) -> List[Tuple[str, str]]:
        """All (origin, destination) PoP-name pairs in row-major order.

        The ordering is the column ordering of the traffic-matrix timeseries
        ``X`` used throughout the library.
        """
        names = self.pop_names
        return [(o, d) for o in names for d in names]

    def od_index(self, origin: str, destination: str) -> int:
        """Column index of the OD pair in the traffic matrix."""
        names = self.pop_names
        try:
            i = names.index(origin)
            j = names.index(destination)
        except ValueError as exc:
            raise KeyError(f"unknown PoP in OD pair ({origin!r}, {destination!r})") from exc
        return i * len(names) + j

    # ------------------------------------------------------------------ #
    # mutation helpers (used by builders)
    # ------------------------------------------------------------------ #
    def add_customer(self, customer: Customer) -> None:
        """Attach an additional customer to the network."""
        if customer.name in self._customers:
            raise ValueError(f"duplicate customer name {customer.name!r}")
        for pop_name in customer.attachment_pops:
            self.pop(pop_name)
        self._customers[customer.name] = customer

    def add_link(self, link: Link) -> None:
        """Add a backbone link."""
        self._validate_link(link)
        self._links.append(link)

    # ------------------------------------------------------------------ #
    # graph views
    # ------------------------------------------------------------------ #
    def router_graph(self) -> nx.DiGraph:
        """Directed router-level graph weighted by IGP metric."""
        graph = nx.DiGraph(name=f"{self.name}-routers")
        for router in self._routers.values():
            graph.add_node(router.name, pop=router.pop)
        for link in self._links:
            graph.add_edge(link.source, link.target,
                           weight=link.igp_weight, capacity=link.capacity_bps)
        return graph

    def pop_graph(self) -> nx.DiGraph:
        """Directed PoP-level graph (minimum IGP weight across parallel links)."""
        graph = nx.DiGraph(name=f"{self.name}-pops")
        for pop in self._pops.values():
            graph.add_node(pop.name, city=pop.city, region_weight=pop.region_weight)
        for link in self._links:
            src_pop = self._routers[link.source].pop
            dst_pop = self._routers[link.target].pop
            if src_pop == dst_pop:
                continue
            existing = graph.get_edge_data(src_pop, dst_pop)
            if existing is None or link.igp_weight < existing["weight"]:
                graph.add_edge(src_pop, dst_pop, weight=link.igp_weight,
                               capacity=link.capacity_bps)
        return graph

    def is_connected(self) -> bool:
        """Whether every PoP can reach every other PoP over backbone links."""
        graph = self.pop_graph()
        if graph.number_of_nodes() < self.n_pops:
            return False
        return nx.is_strongly_connected(graph) if graph.number_of_edges() else False

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _validate_link(self, link: Link) -> None:
        for endpoint in (link.source, link.target):
            if endpoint not in self._routers:
                raise ValueError(f"link endpoint {endpoint!r} is not a known router")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Network(name={self.name!r}, pops={self.n_pops}, "
            f"routers={len(self._routers)}, links={len(self._links)}, "
            f"customers={len(self._customers)})"
        )

    def __iter__(self) -> Iterator[PoP]:
        return iter(self._pops.values())
