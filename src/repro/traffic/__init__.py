"""Synthetic traffic generation.

Produces Abilene-like OD flow traffic with the statistical structure the
subspace method relies on:

* a **gravity model** sets the mean traffic matrix from PoP weights
  (:mod:`repro.traffic.gravity`);
* **diurnal and weekly profiles** give every OD flow the strong common
  temporal trends that end up in the top eigenflows
  (:mod:`repro.traffic.seasonality`);
* **noise models** provide per-flow variability, including temporally
  correlated (AR(1)) and heavy-tailed components
  (:mod:`repro.traffic.noise`);
* the **generator** combines these into a
  :class:`~repro.flows.timeseries.TrafficMatrixSeries` of byte, packet and
  IP-flow counts with realistic cross-type coupling
  (:mod:`repro.traffic.generator`);
* the **flow synthesizer** expands OD-level volumes into individual 5-tuple
  flow records for the record-level pipeline
  (:mod:`repro.traffic.flowgen`).
"""

from repro.traffic.gravity import GravityModel
from repro.traffic.seasonality import (
    DiurnalProfile,
    DriftProfile,
    SeasonalityModel,
    WeeklyProfile,
)
from repro.traffic.noise import NoiseModel, ar1_noise, lognormal_noise
from repro.traffic.generator import GeneratorConfig, ODTrafficGenerator
from repro.traffic.flowgen import FlowSynthesizer

__all__ = [
    "GravityModel",
    "DiurnalProfile",
    "DriftProfile",
    "WeeklyProfile",
    "SeasonalityModel",
    "NoiseModel",
    "ar1_noise",
    "lognormal_noise",
    "GeneratorConfig",
    "ODTrafficGenerator",
    "FlowSynthesizer",
]
