"""Expansion of OD-level volumes into individual 5-tuple flow records.

Used by the end-to-end pipeline example and the resolution-rate experiment
(E9): given an OD pair, a timebin and its byte/packet/flow totals, the
:class:`FlowSynthesizer` emits that many :class:`FlowRecord` objects with
addresses drawn from the customer prefixes of the two PoPs and ports from
the application mixture.  A configurable fraction of flows is given
addresses *outside* any known prefix, modeling the ~7% of traffic the paper
could not resolve.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.flows.composition import DEFAULT_APPLICATION_PORTS
from repro.flows.records import FiveTuple, FlowRecord
from repro.routing.prefixes import Prefix, random_address_in_prefix
from repro.topology.network import Network
from repro.utils.rng import RandomState, spawn_rng
from repro.utils.timebins import TimeBinning
from repro.utils.validation import require

__all__ = ["FlowSynthesizer"]


class FlowSynthesizer:
    """Synthesizes individual flow records consistent with OD-level totals.

    Parameters
    ----------
    network:
        The backbone network (customer prefixes provide addresses).
    unresolvable_fraction:
        Fraction of flows whose source address is drawn from address space
        not covered by any customer prefix or BGP route; these flows fail
        ingress/egress resolution just like the paper's ~7% residue.
    max_flows_per_cell:
        Upper bound on the number of records synthesized per (OD pair, bin);
        when the flow count exceeds it, records are emitted with
        proportionally larger per-record volumes so totals are preserved.
    application_ports:
        Destination-port mixture for the synthesized flows.
    seed:
        Randomness source.
    """

    def __init__(
        self,
        network: Network,
        unresolvable_fraction: float = 0.06,
        max_flows_per_cell: int = 400,
        application_ports: Sequence[Tuple[int, int, float]] = DEFAULT_APPLICATION_PORTS,
        seed: RandomState = None,
    ) -> None:
        require(0.0 <= unresolvable_fraction < 1.0,
                "unresolvable_fraction must be in [0, 1)")
        require(max_flows_per_cell >= 1, "max_flows_per_cell must be >= 1")
        self._network = network
        self._unresolvable_fraction = unresolvable_fraction
        self._max_flows_per_cell = max_flows_per_cell
        self._ports = list(application_ports)
        weights = np.array([w for _, _, w in self._ports], dtype=float)
        self._port_probabilities = weights / weights.sum()
        self._rng = spawn_rng(seed, stream="flow-synthesizer")
        self._pop_prefixes: Dict[str, List[Prefix]] = {}
        for pop in network.pop_names:
            prefixes = [Prefix.parse(p) for c in network.customers_at(pop)
                        for p in c.prefixes]
            if not prefixes:
                index = network.pop_names.index(pop)
                prefixes = [Prefix.parse(f"172.{16 + index}.0.0/16")]
            self._pop_prefixes[pop] = prefixes
        #: Address space guaranteed not to be announced by any customer.
        self._unknown_prefix = Prefix.parse("203.0.0.0/12")

    # ------------------------------------------------------------------ #
    # single-cell synthesis
    # ------------------------------------------------------------------ #
    def synthesize_cell(
        self,
        origin: str,
        destination: str,
        bin_start_seconds: float,
        bin_seconds: int,
        total_bytes: float,
        total_packets: float,
        total_flows: float,
    ) -> List[FlowRecord]:
        """Synthesize the flow records of one (OD pair, bin) cell."""
        self._network.pop(origin)
        self._network.pop(destination)
        n_flows = int(round(total_flows))
        if n_flows <= 0 or total_packets <= 0 or total_bytes <= 0:
            return []
        n_records = min(n_flows, self._max_flows_per_cell)

        shares = self._rng.dirichlet(np.full(n_records, 1.2))
        byte_split = shares * total_bytes
        packet_split = np.maximum(shares * total_packets, 1.0)

        observing_router = self._network.routers_at(origin)[0].name
        src_prefixes = self._pop_prefixes[origin]
        dst_prefixes = self._pop_prefixes[destination]

        records: List[FlowRecord] = []
        for i in range(n_records):
            unresolvable = self._rng.random() < self._unresolvable_fraction
            if unresolvable:
                src_prefix = self._unknown_prefix
                dst_prefix = self._unknown_prefix
                router = None
            else:
                src_prefix = src_prefixes[int(self._rng.integers(0, len(src_prefixes)))]
                dst_prefix = dst_prefixes[int(self._rng.integers(0, len(dst_prefixes)))]
                router = observing_router
            port_index = int(self._rng.choice(len(self._ports), p=self._port_probabilities))
            dst_port, protocol, _ = self._ports[port_index]
            if dst_port == 0:
                dst_port = int(self._rng.integers(1024, 65536))
            key = FiveTuple(
                src_address=random_address_in_prefix(src_prefix, self._rng),
                dst_address=random_address_in_prefix(dst_prefix, self._rng),
                src_port=int(self._rng.integers(1024, 65536)),
                dst_port=dst_port,
                protocol=protocol,
            )
            start = bin_start_seconds + float(self._rng.uniform(0, bin_seconds * 0.8))
            duration = float(self._rng.uniform(1.0, bin_seconds - (start - bin_start_seconds)))
            records.append(FlowRecord(
                key=key,
                start_time=start,
                end_time=start + duration,
                bytes=float(byte_split[i]),
                packets=float(packet_split[i]),
                observing_router=router,
            ))
        return records

    # ------------------------------------------------------------------ #
    # series-level synthesis
    # ------------------------------------------------------------------ #
    def synthesize_series(self, series, bins: Optional[Sequence[int]] = None,
                          od_pairs: Optional[Sequence[Tuple[str, str]]] = None
                          ) -> Iterator[FlowRecord]:
        """Yield flow records for (a subset of) a traffic-matrix series.

        Parameters
        ----------
        series:
            A :class:`~repro.flows.timeseries.TrafficMatrixSeries`.
        bins:
            Bin indices to synthesize (default: all).
        od_pairs:
            OD pairs to synthesize (default: all pairs in the series).
        """
        from repro.flows.timeseries import TrafficType  # local to avoid cycle at import time

        binning: TimeBinning = series.binning
        bins = list(bins) if bins is not None else list(range(series.n_bins))
        od_pairs = list(od_pairs) if od_pairs is not None else series.od_pairs
        bytes_matrix = series.matrix(TrafficType.BYTES)
        packets_matrix = series.matrix(TrafficType.PACKETS)
        flows_matrix = series.matrix(TrafficType.FLOWS)

        for bin_index in bins:
            bin_start = binning.bin_start(bin_index)
            for origin, destination in od_pairs:
                column = series.od_index(origin, destination)
                yield from self.synthesize_cell(
                    origin,
                    destination,
                    bin_start,
                    binning.bin_seconds,
                    total_bytes=float(bytes_matrix[bin_index, column]),
                    total_packets=float(packets_matrix[bin_index, column]),
                    total_flows=float(flows_matrix[bin_index, column]),
                )
