"""The OD-level synthetic traffic generator.

Combines the gravity model, seasonality, and noise into a
:class:`~repro.flows.timeseries.TrafficMatrixSeries` carrying the three
coupled traffic types:

* **bytes** — gravity mean x seasonal factor x noise;
* **packets** — bytes divided by a per-OD mean packet size, with its own
  (partially independent) noise, so byte and packet anomalies are related
  but not identical;
* **IP flows** — packets divided by a per-OD mean flow size (packets per
  flow), again with independent noise.

This coupling mirrors the paper's observation that the three views of the
traffic differ substantially yet share common trends.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.flows.timeseries import TrafficMatrixSeries, TrafficType
from repro.topology.network import Network
from repro.traffic.gravity import GravityModel
from repro.traffic.noise import NoiseModel
from repro.traffic.seasonality import (
    DiurnalProfile,
    DriftProfile,
    SeasonalityModel,
    WeeklyProfile,
)
from repro.utils.rng import RandomState, spawn_rng
from repro.utils.timebins import TimeBinning
from repro.utils.validation import ensure_positive, require

__all__ = ["GeneratorConfig", "ODTrafficGenerator"]


@dataclass(frozen=True)
class GeneratorConfig:
    """Configuration of the synthetic OD traffic generator.

    Parameters
    ----------
    total_bytes_per_bin:
        Network-wide mean byte volume per bin (before sampling).  The
        default corresponds to a few Gbit/s backbone observed through 1%
        packet sampling — the scale seen in Figure 1 of the paper.
    mean_packet_size_bytes, packet_size_spread:
        Mean packet size per OD flow is drawn uniformly in
        ``mean +- spread`` (bytes per packet).
    mean_packets_per_flow, packets_per_flow_spread:
        Mean flow size per OD flow (packets per IP flow), same convention.
    byte_noise, packet_noise, flow_noise:
        Noise models per traffic type (packet and flow noise act on top of
        the byte-level variation).
    diurnal, weekly:
        Seasonality profiles shared across the ensemble.
    phase_jitter_hours, amplitude_jitter:
        Per-OD perturbations of the shared seasonal profile.  Keeping these
        small concentrates the seasonal variation in a handful of common
        eigenflows, which is what the residual-subspace statistics assume.
    self_traffic_fraction, mass_jitter:
        Forwarded to the gravity model.
    drift:
        Deterministic non-stationarity of the background (level drift /
        level shift of the seasonal mean, ramping noise variance).  The
        default :class:`~repro.traffic.seasonality.DriftProfile` is the
        identity, reproducing the stationary generator bit-for-bit.
    """

    total_bytes_per_bin: float = 2.5e9
    mean_packet_size_bytes: float = 750.0
    packet_size_spread: float = 250.0
    mean_packets_per_flow: float = 18.0
    packets_per_flow_spread: float = 8.0
    byte_noise: NoiseModel = field(default_factory=lambda: NoiseModel(
        multiplicative_sigma=0.10, temporal_correlation=0.50))
    packet_noise: NoiseModel = field(default_factory=lambda: NoiseModel(
        multiplicative_sigma=0.09, temporal_correlation=0.30))
    flow_noise: NoiseModel = field(default_factory=lambda: NoiseModel(
        multiplicative_sigma=0.09, temporal_correlation=0.30))
    diurnal: DiurnalProfile = field(default_factory=DiurnalProfile)
    weekly: WeeklyProfile = field(default_factory=WeeklyProfile)
    phase_jitter_hours: float = 0.5
    amplitude_jitter: float = 0.05
    self_traffic_fraction: float = 0.02
    mass_jitter: float = 0.15
    drift: DriftProfile = field(default_factory=DriftProfile)

    def __post_init__(self) -> None:
        ensure_positive(self.total_bytes_per_bin, "total_bytes_per_bin")
        ensure_positive(self.mean_packet_size_bytes, "mean_packet_size_bytes")
        require(0 <= self.packet_size_spread < self.mean_packet_size_bytes,
                "packet_size_spread must be in [0, mean_packet_size_bytes)")
        ensure_positive(self.mean_packets_per_flow, "mean_packets_per_flow")
        require(0 <= self.packets_per_flow_spread < self.mean_packets_per_flow,
                "packets_per_flow_spread must be in [0, mean_packets_per_flow)")
        require(self.phase_jitter_hours >= 0, "phase_jitter_hours must be >= 0")
        require(self.amplitude_jitter >= 0, "amplitude_jitter must be >= 0")


class ODTrafficGenerator:
    """Generates anomaly-free OD-flow traffic for a network.

    Parameters
    ----------
    network:
        The backbone network (defines the OD-pair universe).
    config:
        Generator configuration.
    seed:
        Master seed; all internal randomness is derived from it so that the
        same seed reproduces the same dataset bit-for-bit.
    """

    def __init__(self, network: Network, config: GeneratorConfig = GeneratorConfig(),
                 seed: RandomState = None) -> None:
        self._network = network
        self._config = config
        self._seed = seed
        self._gravity = GravityModel(
            network,
            total_volume=config.total_bytes_per_bin,
            self_traffic_fraction=config.self_traffic_fraction,
            mass_jitter=config.mass_jitter,
            seed=spawn_rng(seed, stream="gravity-seed"),
        )
        n_pairs = network.n_od_pairs
        per_od_rng = spawn_rng(seed, stream="per-od-parameters")
        self._packet_sizes = per_od_rng.uniform(
            config.mean_packet_size_bytes - config.packet_size_spread,
            config.mean_packet_size_bytes + config.packet_size_spread,
            size=n_pairs,
        )
        self._packets_per_flow = per_od_rng.uniform(
            config.mean_packets_per_flow - config.packets_per_flow_spread,
            config.mean_packets_per_flow + config.packets_per_flow_spread,
            size=n_pairs,
        )
        self._seasonality = SeasonalityModel(
            n_od_pairs=n_pairs,
            diurnal=config.diurnal,
            weekly=config.weekly,
            phase_jitter_hours=config.phase_jitter_hours,
            amplitude_jitter=config.amplitude_jitter,
            seed=spawn_rng(seed, stream="seasonality-seed"),
        )

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def network(self) -> Network:
        """The backbone network."""
        return self._network

    @property
    def config(self) -> GeneratorConfig:
        """The generator configuration."""
        return self._config

    @property
    def gravity(self) -> GravityModel:
        """The underlying gravity model."""
        return self._gravity

    def mean_packet_size(self, od_index: int) -> float:
        """Mean packet size (bytes) of the OD flow at *od_index*."""
        return float(self._packet_sizes[od_index])

    def mean_packets_per_flow(self, od_index: int) -> float:
        """Mean flow size (packets per flow) of the OD flow at *od_index*."""
        return float(self._packets_per_flow[od_index])

    # ------------------------------------------------------------------ #
    # generation
    # ------------------------------------------------------------------ #
    def generate(self, binning: TimeBinning) -> TrafficMatrixSeries:
        """Generate a full anomaly-free traffic-matrix series over *binning*."""
        od_pairs = self._network.od_pairs()
        n_bins, n_pairs = binning.n_bins, len(od_pairs)

        mean_bytes = self._gravity.mean_vector()                   # (p,)
        seasonal = self._seasonality.factors(binning)               # (n, p)
        clean_bytes = seasonal * mean_bytes[np.newaxis, :]

        # Deterministic non-stationarity: the drift profile ramps/shifts
        # the mean level and ramps the noise sigma along the absolute time
        # axis.  The identity profile leaves every code path untouched so
        # stationary datasets stay bit-for-bit reproducible.
        drift = self._config.drift
        noise_scale = None
        if not drift.is_stationary:
            times = np.array([binning.bin_start(i) for i in range(n_bins)],
                             dtype=float)
            clean_bytes = clean_bytes * drift.level_factor(times)[:, np.newaxis]
            noise_scale = drift.noise_scale(times)

        # Bytes: anchored noise whose scale follows each OD flow's mean level.
        byte_rng = spawn_rng(self._seed, stream="byte-noise")
        bytes_matrix = self._config.byte_noise.apply_anchored(
            clean_bytes, mean_bytes, byte_rng, time_scale=noise_scale)

        # Packets: the byte signal converted through the per-OD packet size,
        # plus an independent anchored fluctuation of its own.
        mean_packets = mean_bytes / self._packet_sizes
        clean_packets = bytes_matrix / self._packet_sizes[np.newaxis, :]
        packet_rng = spawn_rng(self._seed, stream="packet-noise")
        packets_matrix = self._config.packet_noise.apply_anchored(
            clean_packets, mean_packets, packet_rng, time_scale=noise_scale)

        # IP flows: the packet signal converted through packets-per-flow,
        # again with independent anchored fluctuation.
        mean_flows = mean_packets / self._packets_per_flow
        clean_flows = packets_matrix / self._packets_per_flow[np.newaxis, :]
        flow_rng = spawn_rng(self._seed, stream="flow-noise")
        flows_matrix = self._config.flow_noise.apply_anchored(
            clean_flows, mean_flows, flow_rng, time_scale=noise_scale)

        matrices: Dict[TrafficType, np.ndarray] = {
            TrafficType.BYTES: np.clip(bytes_matrix, 0.0, None),
            TrafficType.PACKETS: np.clip(packets_matrix, 0.0, None),
            TrafficType.FLOWS: np.clip(flows_matrix, 0.0, None),
        }
        return TrafficMatrixSeries(od_pairs, binning, matrices)
