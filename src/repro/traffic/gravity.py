"""Gravity model for the mean OD traffic matrix.

The classical gravity model sets the mean traffic from PoP *i* to PoP *j*
proportional to the product of an "outbound mass" of *i* and an "inbound
mass" of *j*.  It is the standard first-order model of backbone traffic
matrices and matches the structural findings of Lakhina et al.'s companion
paper (a few strong common factors dominate the ensemble of OD flows).
"""

from __future__ import annotations

import numpy as np

from repro.topology.network import Network
from repro.utils.rng import RandomState, spawn_rng
from repro.utils.validation import ensure_positive, require

__all__ = ["GravityModel"]


class GravityModel:
    """Gravity model over the PoPs of a network.

    Parameters
    ----------
    network:
        The backbone network; PoP ``region_weight`` values provide the
        gravity masses.
    total_volume:
        Network-wide mean volume per bin (in the units of the traffic type
        being modeled, e.g. bytes per 5-minute bin).
    self_traffic_fraction:
        Fraction of a PoP's traffic that stays local (the OD self-pairs,
        which exist in the 121-pair Abilene matrix but are comparatively
        small).
    mass_jitter:
        Multiplicative lognormal jitter applied independently to each PoP's
        inbound and outbound mass, so the matrix is not exactly rank one.
    seed:
        Randomness for the jitter.
    """

    def __init__(
        self,
        network: Network,
        total_volume: float = 1.0e9,
        self_traffic_fraction: float = 0.02,
        mass_jitter: float = 0.15,
        seed: RandomState = None,
    ) -> None:
        ensure_positive(total_volume, "total_volume")
        require(0.0 <= self_traffic_fraction < 1.0,
                "self_traffic_fraction must be in [0, 1)")
        require(mass_jitter >= 0.0, "mass_jitter must be non-negative")
        self._network = network
        self._total_volume = float(total_volume)
        self._self_fraction = float(self_traffic_fraction)

        rng = spawn_rng(seed, stream="gravity")
        weights = np.array([pop.region_weight for pop in network.pops], dtype=float)
        out_jitter = np.exp(rng.normal(0.0, mass_jitter, size=weights.size))
        in_jitter = np.exp(rng.normal(0.0, mass_jitter, size=weights.size))
        self._out_mass = weights * out_jitter
        self._in_mass = weights * in_jitter

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def network(self) -> Network:
        """The underlying network."""
        return self._network

    @property
    def total_volume(self) -> float:
        """Network-wide mean volume per bin."""
        return self._total_volume

    def outbound_mass(self) -> np.ndarray:
        """Per-PoP outbound gravity masses (after jitter)."""
        return self._out_mass.copy()

    def inbound_mass(self) -> np.ndarray:
        """Per-PoP inbound gravity masses (after jitter)."""
        return self._in_mass.copy()

    # ------------------------------------------------------------------ #
    # the matrix
    # ------------------------------------------------------------------ #
    def mean_matrix(self) -> np.ndarray:
        """The ``n_pops x n_pops`` mean traffic matrix.

        Off-diagonal entries follow the gravity form
        ``T_ij ∝ out_i * in_j``; diagonal (self-pair) entries carry
        ``self_traffic_fraction`` of the total, split proportionally to PoP
        weight.  The matrix sums to ``total_volume``.
        """
        n = self._network.n_pops
        outer = np.outer(self._out_mass, self._in_mass)
        np.fill_diagonal(outer, 0.0)
        off_diagonal_total = self._total_volume * (1.0 - self._self_fraction)
        if outer.sum() > 0:
            matrix = outer / outer.sum() * off_diagonal_total
        else:
            matrix = np.zeros((n, n))

        if self._self_fraction > 0:
            self_weights = self._out_mass * self._in_mass
            self_weights = self_weights / self_weights.sum()
            np.fill_diagonal(matrix, self._self_fraction * self._total_volume * self_weights)
        return matrix

    def mean_vector(self) -> np.ndarray:
        """The mean matrix flattened in the library's OD-pair column order."""
        return self.mean_matrix().reshape(-1)

    def od_mean(self, origin: str, destination: str) -> float:
        """Mean volume of a single OD pair."""
        names = self._network.pop_names
        matrix = self.mean_matrix()
        return float(matrix[names.index(origin), names.index(destination)])

    def scaled(self, factor: float) -> "GravityModel":
        """A copy of the model with total volume scaled by *factor*."""
        ensure_positive(factor, "factor")
        clone = GravityModel.__new__(GravityModel)
        clone._network = self._network
        clone._total_volume = self._total_volume * factor
        clone._self_fraction = self._self_fraction
        clone._out_mass = self._out_mass.copy()
        clone._in_mass = self._in_mass.copy()
        return clone
