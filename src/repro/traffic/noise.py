"""Noise models for synthetic OD traffic.

The residual (non-seasonal) variation of real OD flows is temporally
correlated and right-skewed.  We provide:

* :func:`ar1_noise` — a zero-mean AR(1) (Ornstein–Uhlenbeck-like) process,
  giving short-range temporal correlation;
* :func:`lognormal_noise` — multiplicative lognormal factors with unit mean,
  giving the right-skew of traffic volumes;
* :class:`NoiseModel` — the combination used by the generator: a
  multiplicative lognormal component driven by an AR(1) core, plus an
  additive Gaussian measurement-noise floor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.utils.rng import RandomState, spawn_rng
from repro.utils.validation import require

__all__ = ["ar1_noise", "lognormal_noise", "NoiseModel"]


def ar1_noise(n_samples: int, n_series: int, phi: float, sigma: float,
              rng: RandomState = None) -> np.ndarray:
    """Zero-mean AR(1) noise: ``z_t = phi * z_{t-1} + eps_t``.

    Parameters
    ----------
    n_samples, n_series:
        Output shape ``(n_samples, n_series)``.
    phi:
        AR(1) coefficient in ``[0, 1)``; 0 gives white noise.
    sigma:
        Stationary standard deviation of the process.
    rng:
        Randomness source.
    """
    require(n_samples >= 1 and n_series >= 1, "output shape must be positive")
    require(0.0 <= phi < 1.0, "phi must be in [0, 1)")
    require(sigma >= 0.0, "sigma must be non-negative")
    generator = spawn_rng(rng)
    if sigma == 0.0:
        return np.zeros((n_samples, n_series))
    innovation_sigma = sigma * np.sqrt(1.0 - phi**2)
    innovations = generator.normal(0.0, innovation_sigma, size=(n_samples, n_series))
    output = np.empty((n_samples, n_series))
    output[0] = generator.normal(0.0, sigma, size=n_series)
    for t in range(1, n_samples):
        output[t] = phi * output[t - 1] + innovations[t]
    return output


def lognormal_noise(n_samples: int, n_series: int, sigma: float,
                    rng: RandomState = None) -> np.ndarray:
    """Unit-mean multiplicative lognormal noise factors.

    The factors are ``exp(N(-sigma^2/2, sigma^2))`` so that their mean is 1
    and the traffic mean is preserved.
    """
    require(sigma >= 0.0, "sigma must be non-negative")
    generator = spawn_rng(rng)
    if sigma == 0.0:
        return np.ones((n_samples, n_series))
    return np.exp(generator.normal(-0.5 * sigma**2, sigma, size=(n_samples, n_series)))


@dataclass(frozen=True)
class NoiseModel:
    """The generator's combined noise model.

    The multiplicative factor for each cell is
    ``exp(ar1 - sigma_m^2/2)`` where the AR(1) core has standard deviation
    ``multiplicative_sigma`` and coefficient ``temporal_correlation`` —
    i.e. a temporally correlated lognormal with unit mean.  An additive
    Gaussian term with standard deviation ``additive_sigma`` (in absolute
    volume units) models measurement/sampling noise.

    Parameters
    ----------
    multiplicative_sigma:
        Relative per-bin variability of each OD flow (0.25 ≈ 25%).
    temporal_correlation:
        AR(1) coefficient of the multiplicative core.
    additive_sigma:
        Absolute additive noise floor.
    """

    multiplicative_sigma: float = 0.25
    temporal_correlation: float = 0.5
    additive_sigma: float = 0.0

    def __post_init__(self) -> None:
        require(self.multiplicative_sigma >= 0, "multiplicative_sigma must be >= 0")
        require(0.0 <= self.temporal_correlation < 1.0,
                "temporal_correlation must be in [0, 1)")
        require(self.additive_sigma >= 0, "additive_sigma must be >= 0")

    def multiplicative_factors(self, n_samples: int, n_series: int,
                               rng: RandomState = None) -> np.ndarray:
        """Unit-mean multiplicative noise factors of shape (n_samples, n_series)."""
        generator = spawn_rng(rng)
        core = ar1_noise(n_samples, n_series, self.temporal_correlation,
                         self.multiplicative_sigma, generator)
        return np.exp(core - 0.5 * self.multiplicative_sigma**2)

    def additive_terms(self, n_samples: int, n_series: int,
                       rng: RandomState = None) -> np.ndarray:
        """Additive noise terms of shape (n_samples, n_series)."""
        generator = spawn_rng(rng)
        if self.additive_sigma == 0.0:
            return np.zeros((n_samples, n_series))
        return generator.normal(0.0, self.additive_sigma, size=(n_samples, n_series))

    def apply(self, clean: np.ndarray, rng: RandomState = None) -> np.ndarray:
        """Apply the noise model multiplicatively to a clean traffic matrix.

        The per-cell standard deviation is proportional to the cell's
        instantaneous value — appropriate for short-timescale burstiness,
        but strongly heteroscedastic over the diurnal cycle.
        """
        require(clean.ndim == 2, "clean matrix must be 2-D")
        generator = spawn_rng(rng)
        noisy = clean * self.multiplicative_factors(*clean.shape, rng=generator)
        noisy = noisy + self.additive_terms(*clean.shape, rng=generator)
        return np.clip(noisy, 0.0, None)

    def apply_anchored(self, clean: np.ndarray, anchor: np.ndarray,
                       rng: RandomState = None,
                       time_scale: Optional[np.ndarray] = None) -> np.ndarray:
        """Apply the noise model with per-column (per-OD) anchored scale.

        Each column receives zero-mean AR(1) Gaussian noise whose standard
        deviation is ``multiplicative_sigma * anchor[column]`` — constant in
        time.  This matches the behaviour of aggregated backbone traffic,
        where the absolute fluctuation level of an OD flow tracks its
        long-run mean rather than its instantaneous value, and it keeps the
        residual subspace homoscedastic — the regime the Q-statistic and T²
        control limits were derived for.

        Parameters
        ----------
        clean:
            The ``n x p`` noise-free matrix.
        anchor:
            Length-``p`` per-column scale (typically the OD flow's long-run
            mean volume).
        rng:
            Randomness source.
        time_scale:
            Optional length-``n`` per-row multiplier of the noise standard
            deviation (both components), breaking the homoscedasticity
            deliberately — this is how
            :class:`~repro.traffic.seasonality.DriftProfile` ramps the
            variance of a non-stationary week.  ``None`` (the default)
            keeps the stationary behaviour bit-for-bit.
        """
        require(clean.ndim == 2, "clean matrix must be 2-D")
        anchor = np.asarray(anchor, dtype=float).ravel()
        require(anchor.size == clean.shape[1],
                "anchor must have one entry per column of the clean matrix")
        require(np.all(anchor >= 0), "anchor values must be non-negative")
        generator = spawn_rng(rng)
        n_samples, n_series = clean.shape
        core = ar1_noise(n_samples, n_series, self.temporal_correlation,
                         self.multiplicative_sigma, generator)
        anchored = core * anchor[np.newaxis, :]
        additive = self.additive_terms(n_samples, n_series, generator)
        if time_scale is not None:
            time_scale = np.asarray(time_scale, dtype=float).ravel()
            require(time_scale.size == n_samples,
                    "time_scale must have one entry per row of the clean "
                    "matrix")
            require(np.all(time_scale >= 0),
                    "time_scale values must be non-negative")
            anchored = anchored * time_scale[:, np.newaxis]
            additive = additive * time_scale[:, np.newaxis]
        # Summation order matches the historical implementation so that a
        # None time_scale reproduces pre-drift datasets bit-for-bit.
        noisy = clean + anchored
        noisy = noisy + additive
        return np.clip(noisy, 0.0, None)
