"""Diurnal and weekly seasonality profiles.

Figure 1 of the paper shows pronounced diurnal cycles in all three traffic
types; those common temporal trends are exactly what PCA extracts into the
top eigenflows.  The profiles here are smooth, strictly positive
multiplicative factors of time-of-day and day-of-week, shared (with small
per-OD phase/amplitude perturbations) across the whole OD ensemble.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.utils.rng import RandomState, spawn_rng
from repro.utils.timebins import SECONDS_PER_DAY, TimeBinning
from repro.utils.validation import require

__all__ = ["DiurnalProfile", "WeeklyProfile", "DriftProfile", "SeasonalityModel"]


@dataclass(frozen=True)
class DiurnalProfile:
    """A smooth time-of-day activity profile.

    The profile is ``1 + amplitude * cos`` terms peaking at ``peak_hour``
    with an optional second harmonic; values are clipped away from zero so
    the profile is always a valid multiplicative factor.

    Parameters
    ----------
    amplitude:
        Peak-to-mean relative amplitude of the daily cycle (0 disables it).
    peak_hour:
        Hour of day (0-24) at which traffic peaks.
    second_harmonic:
        Relative amplitude of a 12-hour harmonic (captures the typical
        mid-day plateau of research-network traffic).
    """

    amplitude: float = 0.45
    peak_hour: float = 15.0
    second_harmonic: float = 0.12

    def __post_init__(self) -> None:
        require(0.0 <= self.amplitude < 1.0, "amplitude must be in [0, 1)")
        require(0.0 <= self.peak_hour < 24.0, "peak_hour must be in [0, 24)")
        require(0.0 <= self.second_harmonic < 1.0, "second_harmonic must be in [0, 1)")

    def factor(self, time_seconds: np.ndarray | float) -> np.ndarray:
        """Multiplicative factor at the given absolute time(s) in seconds."""
        time_of_day = np.asarray(time_seconds, dtype=float) % SECONDS_PER_DAY
        phase = 2.0 * np.pi * (time_of_day / SECONDS_PER_DAY - self.peak_hour / 24.0)
        values = (1.0
                  + self.amplitude * np.cos(phase)
                  + self.second_harmonic * np.cos(2.0 * phase))
        return np.clip(values, 0.05, None)


@dataclass(frozen=True)
class WeeklyProfile:
    """Day-of-week activity factors (index 0 = the dataset's first day).

    Academic backbone traffic dips at weekends; the default profile assumes
    the dataset starts on a Monday.
    """

    day_factors: Sequence[float] = (1.0, 1.02, 1.04, 1.03, 0.98, 0.78, 0.72)

    def __post_init__(self) -> None:
        require(len(self.day_factors) == 7, "day_factors must have 7 entries")
        require(all(f > 0 for f in self.day_factors), "day factors must be positive")

    def factor(self, time_seconds: np.ndarray | float) -> np.ndarray:
        """Multiplicative factor at the given absolute time(s) in seconds."""
        days = (np.asarray(time_seconds, dtype=float) // SECONDS_PER_DAY).astype(int) % 7
        return np.asarray(self.day_factors, dtype=float)[days]


@dataclass(frozen=True)
class DriftProfile:
    """Deterministic non-stationarity of the synthetic background.

    The seasonality/noise substrates above model a *stationary* week — the
    regime the paper's fixed 99.9% control limits assume.  This profile
    layers slow secular drift on top, producing the non-stationary weeks
    the adaptive-threshold policy
    (:class:`~repro.streaming.adaptive_limits.AdaptiveControlLimits`) is
    benchmarked on: a linear multiplicative ramp of the diurnal mean
    level, an optional one-time level shift, and a linear ramp of the
    noise standard deviation.  All factors follow the absolute time axis,
    like the seasonal profiles, so block-wise streaming generation stays
    seamless.

    Parameters
    ----------
    level_drift_per_day:
        Relative drift of the mean level per day (``0.1`` ≈ +10%/day).
    level_shift:
        One-time relative step of the mean level (``0.2`` ≈ +20%).
    level_shift_day:
        Day (fractional, from the stream's absolute time origin) at which
        the level shift applies.
    variance_ramp_per_day:
        Relative ramp of the noise standard deviation per day.
    """

    level_drift_per_day: float = 0.0
    level_shift: float = 0.0
    level_shift_day: float = 0.0
    variance_ramp_per_day: float = 0.0

    def __post_init__(self) -> None:
        require(self.level_shift > -1.0, "level_shift must be > -1")
        require(self.level_shift_day >= 0.0,
                "level_shift_day must be non-negative")

    @property
    def is_stationary(self) -> bool:
        """Whether the profile is the identity (no drift at all)."""
        return (self.level_drift_per_day == 0.0
                and self.level_shift == 0.0
                and self.variance_ramp_per_day == 0.0)

    def level_factor(self, time_seconds: np.ndarray | float) -> np.ndarray:
        """Multiplicative mean-level factor at absolute time(s) in seconds."""
        days = np.asarray(time_seconds, dtype=float) / SECONDS_PER_DAY
        values = 1.0 + self.level_drift_per_day * days
        if self.level_shift != 0.0:
            values = np.where(days >= self.level_shift_day,
                              values * (1.0 + self.level_shift), values)
        return np.clip(values, 0.05, None)

    def noise_scale(self, time_seconds: np.ndarray | float) -> np.ndarray:
        """Multiplicative noise-sigma factor at absolute time(s) in seconds."""
        days = np.asarray(time_seconds, dtype=float) / SECONDS_PER_DAY
        return np.clip(1.0 + self.variance_ramp_per_day * days, 0.0, None)


class SeasonalityModel:
    """Combined diurnal + weekly seasonality with per-OD perturbations.

    Each OD flow follows the network-wide profile, but with a small random
    phase shift and amplitude scaling of its own, so that the ensemble is
    dominated by a handful of common trends (the top eigenflows) without
    being exactly low-rank.

    Parameters
    ----------
    n_od_pairs:
        Number of OD flows to generate per-flow perturbations for.
    diurnal, weekly:
        The shared base profiles.
    phase_jitter_hours:
        Standard deviation of the per-OD peak-hour shift.
    amplitude_jitter:
        Standard deviation of the per-OD relative amplitude scaling.
    seed:
        Randomness for the perturbations.
    """

    def __init__(
        self,
        n_od_pairs: int,
        diurnal: DiurnalProfile = DiurnalProfile(),
        weekly: WeeklyProfile = WeeklyProfile(),
        phase_jitter_hours: float = 1.0,
        amplitude_jitter: float = 0.1,
        seed: RandomState = None,
    ) -> None:
        require(n_od_pairs >= 1, "n_od_pairs must be >= 1")
        require(phase_jitter_hours >= 0, "phase_jitter_hours must be non-negative")
        require(amplitude_jitter >= 0, "amplitude_jitter must be non-negative")
        rng = spawn_rng(seed, stream="seasonality")
        self._weekly = weekly
        self._profiles = []
        for _ in range(n_od_pairs):
            peak = (diurnal.peak_hour + rng.normal(0.0, phase_jitter_hours)) % 24.0
            amplitude = float(np.clip(
                diurnal.amplitude * (1.0 + rng.normal(0.0, amplitude_jitter)),
                0.0, 0.95,
            ))
            self._profiles.append(DiurnalProfile(
                amplitude=amplitude,
                peak_hour=peak,
                second_harmonic=diurnal.second_harmonic,
            ))

    @property
    def n_od_pairs(self) -> int:
        """Number of per-OD profiles."""
        return len(self._profiles)

    def factors(self, binning: TimeBinning) -> np.ndarray:
        """The ``n_bins x n_od_pairs`` matrix of seasonal factors."""
        times = np.array([binning.bin_start(i) for i in range(binning.n_bins)],
                         dtype=float)
        weekly = self._weekly.factor(times)
        columns = [profile.factor(times) * weekly for profile in self._profiles]
        return np.column_stack(columns)

    def od_factor(self, od_index: int, binning: TimeBinning) -> np.ndarray:
        """Seasonal factor timeseries of one OD flow."""
        require(0 <= od_index < self.n_od_pairs, "od_index out of range")
        times = np.array([binning.bin_start(i) for i in range(binning.n_bins)],
                         dtype=float)
        return self._profiles[od_index].factor(times) * self._weekly.factor(times)
