"""Shared utilities: statistics helpers, time binning, RNG management, validation.

These helpers are deliberately small and dependency-light; every other
subpackage builds on them.
"""

from repro.utils.rng import RandomState, spawn_rng
from repro.utils.stats import (
    f_quantile,
    normal_quantile,
    q_statistic_threshold,
    t_squared_threshold,
)
from repro.utils.timebins import TimeBinning, bins_per_day, bins_per_week
from repro.utils.validation import (
    ensure_2d,
    ensure_positive,
    ensure_probability,
    require,
)

__all__ = [
    "RandomState",
    "spawn_rng",
    "normal_quantile",
    "f_quantile",
    "q_statistic_threshold",
    "t_squared_threshold",
    "TimeBinning",
    "bins_per_day",
    "bins_per_week",
    "require",
    "ensure_2d",
    "ensure_positive",
    "ensure_probability",
]
