"""Reproducible random-number management.

Every stochastic component in the library accepts either an integer seed or a
``numpy.random.Generator``. :func:`spawn_rng` normalizes both into a
``Generator`` and lets a parent generator deterministically derive independent
child streams (one per subsystem), so that, e.g., changing the anomaly
schedule does not perturb the background traffic.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

__all__ = ["RandomState", "spawn_rng"]

#: Anything accepted as a source of randomness by library entry points.
RandomState = Union[int, np.random.Generator, None]

_DEFAULT_SEED = 20040519  # the paper's publication date, for a stable default


def spawn_rng(seed: RandomState = None, *, stream: Optional[str] = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for *seed*.

    Parameters
    ----------
    seed:
        ``None`` (use the library default seed), an integer seed, or an
        existing ``Generator`` (returned as-is unless *stream* is given).
    stream:
        Optional label. When provided, a child generator is derived
        deterministically from ``(seed, stream)`` so different subsystems get
        independent but reproducible streams.
    """
    if isinstance(seed, np.random.Generator):
        if stream is None:
            return seed
        # Derive a child stream from the generator's own bit stream in a
        # deterministic, label-dependent way.  The label must be hashed with
        # the interpreter-stable FNV hash: builtin hash() is randomized per
        # process (PYTHONHASHSEED), which would make every derived stream —
        # and thus every generated dataset — differ from run to run.
        label_entropy = _stable_label_hash(stream)
        child_seed = int(seed.integers(0, 2**32)) ^ label_entropy
        return np.random.default_rng(child_seed)

    base = _DEFAULT_SEED if seed is None else int(seed)
    if stream is None:
        return np.random.default_rng(base)
    label_entropy = _stable_label_hash(stream)
    return np.random.default_rng(np.random.SeedSequence([base, label_entropy]))


def _stable_label_hash(label: str) -> int:
    """Hash *label* into a 32-bit integer, stable across interpreter runs."""
    value = 2166136261
    for char in label.encode("utf-8"):
        value = (value ^ char) * 16777619 % (2**32)
    return value
