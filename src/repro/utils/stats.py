"""Statistical helpers for the subspace method.

This module implements the two threshold statistics the paper relies on:

* the **Q-statistic** (Jackson–Mudholkar, 1979) limit for the squared
  prediction error of the residual subspace, and
* the **Hotelling T²** limit ``k(n-1)/(n-k) · F(k, n-k; alpha)`` for the
  normal subspace.

Both are exposed as plain functions so that they can be unit-tested in
isolation and reused by baselines and ablations.
"""

from __future__ import annotations

import numpy as np
from scipy import stats as _scipy_stats

from repro.utils.validation import ensure_probability, require

__all__ = [
    "normal_quantile",
    "f_quantile",
    "q_statistic_threshold",
    "t_squared_threshold",
    "empirical_quantile_threshold",
]


def normal_quantile(confidence: float) -> float:
    """Return the standard-normal quantile at *confidence* (e.g. 0.999)."""
    ensure_probability(confidence, "confidence")
    return float(_scipy_stats.norm.ppf(confidence))


def f_quantile(dfn: int, dfd: int, confidence: float) -> float:
    """Return the F-distribution quantile with *dfn*, *dfd* degrees of freedom."""
    require(dfn >= 1, "dfn must be >= 1")
    require(dfd >= 1, "dfd must be >= 1")
    ensure_probability(confidence, "confidence")
    return float(_scipy_stats.f.ppf(confidence, dfn, dfd))


def q_statistic_threshold(
    eigenvalues: np.ndarray,
    n_normal: int,
    confidence: float = 0.999,
) -> float:
    """Jackson–Mudholkar Q-statistic limit for the squared prediction error.

    Parameters
    ----------
    eigenvalues:
        All eigenvalues of the data covariance, sorted in descending order.
        Only the residual eigenvalues (index >= *n_normal*) enter the limit.
    n_normal:
        Number of principal components in the normal subspace (the paper
        uses ``k = 4``).
    confidence:
        One-sided confidence level ``1 - alpha`` (paper: 0.999).

    Returns
    -------
    float
        The threshold ``delta^2`` such that ``||x~||^2 > delta^2`` flags an
        anomaly at the requested confidence level.

    Notes
    -----
    With ``phi_i = sum_{j>k} lambda_j^i`` and
    ``h0 = 1 - 2 phi_1 phi_3 / (3 phi_2^2)``, the limit is::

        delta^2 = phi_1 * [ c_a sqrt(2 phi_2 h0^2) / phi_1
                            + 1 + phi_2 h0 (h0 - 1) / phi_1^2 ] ** (1 / h0)

    where ``c_a`` is the standard-normal quantile at the confidence level.
    Degenerate cases (no residual variance) return 0.0 so that any non-zero
    residual is flagged.
    """
    ensure_probability(confidence, "confidence")
    lam = np.asarray(eigenvalues, dtype=float).ravel()
    require(lam.ndim == 1 and lam.size > 0, "eigenvalues must be a non-empty 1-D array")
    require(0 <= n_normal < lam.size, "n_normal must satisfy 0 <= n_normal < len(eigenvalues)")
    residual = np.clip(lam[n_normal:], 0.0, None)

    phi1 = float(np.sum(residual))
    phi2 = float(np.sum(residual**2))
    phi3 = float(np.sum(residual**3))
    if phi1 <= 0.0 or phi2 <= 0.0:
        return 0.0

    h0 = 1.0 - 2.0 * phi1 * phi3 / (3.0 * phi2**2)
    if h0 <= 0.0:
        # Jackson & Mudholkar note h0 may turn negative for pathological
        # spectra; fall back to h0 -> small positive, which gives a
        # conservative (large) threshold.
        h0 = 1e-4

    c_alpha = normal_quantile(confidence)
    term = (
        c_alpha * np.sqrt(2.0 * phi2 * h0**2) / phi1
        + 1.0
        + phi2 * h0 * (h0 - 1.0) / phi1**2
    )
    if term <= 0.0:
        return 0.0
    return float(phi1 * term ** (1.0 / h0))


def t_squared_threshold(n_normal: int, n_samples: int, confidence: float = 0.999) -> float:
    """Hotelling T² control limit ``k(n-1)/(n-k) · F(k, n-k; alpha)``.

    Parameters
    ----------
    n_normal:
        Dimension ``k`` of the normal subspace.
    n_samples:
        Number of timebins ``n`` used to fit the model.
    confidence:
        One-sided confidence level ``1 - alpha`` (paper: 0.999).
    """
    require(n_normal >= 1, "n_normal must be >= 1")
    require(n_samples > n_normal + 1, "n_samples must exceed n_normal + 1")
    f_value = f_quantile(n_normal, n_samples - n_normal, confidence)
    return float(n_normal * (n_samples - 1) / (n_samples - n_normal) * f_value)


def empirical_quantile_threshold(values: np.ndarray, confidence: float = 0.999) -> float:
    """Empirical quantile threshold used by the baseline detectors.

    This is intentionally simple: baselines that lack a parametric control
    limit flag values above the empirical *confidence* quantile of their own
    detection statistic.
    """
    ensure_probability(confidence, "confidence")
    array = np.asarray(values, dtype=float).ravel()
    require(array.size > 0, "values must be non-empty")
    return float(np.quantile(array, confidence))
