"""Time-bin bookkeeping.

The paper aggregates sampled flow records into 5-minute bins; a week of data
is ``n = 2016`` bins.  :class:`TimeBinning` centralizes the conversion between
seconds, bin indices, and human-readable timestamps so that the traffic
generator, injectors, detector, and evaluation all agree on indexing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.utils.validation import require

__all__ = ["TimeBinning", "bins_per_day", "bins_per_week", "week_windows",
           "SECONDS_PER_MINUTE"]

SECONDS_PER_MINUTE = 60
SECONDS_PER_DAY = 86_400
SECONDS_PER_WEEK = 7 * SECONDS_PER_DAY


def bins_per_day(bin_seconds: int = 300) -> int:
    """Number of bins in one day for the given bin width (default 5 minutes)."""
    require(bin_seconds > 0, "bin_seconds must be positive")
    require(SECONDS_PER_DAY % bin_seconds == 0, "bin_seconds must divide one day")
    return SECONDS_PER_DAY // bin_seconds


def bins_per_week(bin_seconds: int = 300) -> int:
    """Number of bins in one week for the given bin width (default 5 minutes)."""
    return 7 * bins_per_day(bin_seconds)


def week_windows(n_bins: int, bin_seconds: int = 300,
                 min_bins: int = 1) -> List[Tuple[int, int]]:
    """``(start, end)`` week windows covering ``n_bins`` bins.

    The paper fits and diagnoses one week at a time; every table/figure
    runner and the live evaluation harness window a dataset the same way
    through this helper.  A trailing partial week shorter than *min_bins*
    (e.g. too short to fit the subspace model) is dropped.
    """
    require(n_bins >= 0, "n_bins must be non-negative")
    require(min_bins >= 1, "min_bins must be >= 1")
    per_week = bins_per_week(bin_seconds)
    windows: List[Tuple[int, int]] = []
    start = 0
    while start < n_bins:
        end = min(start + per_week, n_bins)
        if end - start >= min_bins:
            windows.append((start, end))
        start = end
    return windows


@dataclass(frozen=True)
class TimeBinning:
    """Uniform time binning starting at ``start_seconds``.

    Parameters
    ----------
    n_bins:
        Number of bins covered by the dataset.
    bin_seconds:
        Width of each bin in seconds (paper default: 300 s = 5 minutes).
    start_seconds:
        Absolute start time of bin 0, in seconds (arbitrary epoch).
    """

    n_bins: int
    bin_seconds: int = 300
    start_seconds: int = 0

    def __post_init__(self) -> None:
        require(self.n_bins > 0, "n_bins must be positive")
        require(self.bin_seconds > 0, "bin_seconds must be positive")

    # ------------------------------------------------------------------ #
    # conversions
    # ------------------------------------------------------------------ #
    @property
    def duration_seconds(self) -> int:
        """Total covered duration in seconds."""
        return self.n_bins * self.bin_seconds

    @property
    def end_seconds(self) -> int:
        """Absolute end time (exclusive) in seconds."""
        return self.start_seconds + self.duration_seconds

    def bin_of(self, time_seconds: float) -> int:
        """Return the bin index containing *time_seconds*.

        Raises ``ValueError`` when the time falls outside the covered range.
        """
        offset = time_seconds - self.start_seconds
        if offset < 0 or offset >= self.duration_seconds:
            raise ValueError(
                f"time {time_seconds} outside binning range "
                f"[{self.start_seconds}, {self.end_seconds})"
            )
        return int(offset // self.bin_seconds)

    def bin_start(self, bin_index: int) -> int:
        """Absolute start time of *bin_index* in seconds."""
        self._check_index(bin_index)
        return self.start_seconds + bin_index * self.bin_seconds

    def bin_range(self, bin_index: int) -> Tuple[int, int]:
        """Half-open ``(start, end)`` time range of *bin_index* in seconds."""
        start = self.bin_start(bin_index)
        return start, start + self.bin_seconds

    def bins_between(self, start_seconds: float, end_seconds: float) -> List[int]:
        """All bin indices overlapping the half-open interval ``[start, end)``."""
        require(end_seconds > start_seconds, "end_seconds must exceed start_seconds")
        first = max(0, int((start_seconds - self.start_seconds) // self.bin_seconds))
        last = min(
            self.n_bins - 1,
            int((end_seconds - self.start_seconds - 1e-9) // self.bin_seconds),
        )
        if last < first:
            return []
        return list(range(first, last + 1))

    def duration_minutes(self, n_bins: int) -> float:
        """Duration in minutes spanned by *n_bins* consecutive bins."""
        return n_bins * self.bin_seconds / SECONDS_PER_MINUTE

    def rebin_factor(self, coarse_bin_seconds: int) -> int:
        """Number of fine bins per coarse bin when re-binning."""
        require(coarse_bin_seconds % self.bin_seconds == 0,
                "coarse bin width must be a multiple of the fine bin width")
        return coarse_bin_seconds // self.bin_seconds

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.n_bins))

    def __len__(self) -> int:
        return self.n_bins

    def _check_index(self, bin_index: int) -> None:
        if not 0 <= bin_index < self.n_bins:
            raise IndexError(f"bin index {bin_index} out of range [0, {self.n_bins})")


def week_binning(weeks: int = 1, bin_seconds: int = 300, start_seconds: int = 0) -> TimeBinning:
    """Convenience constructor: a binning covering *weeks* whole weeks."""
    require(weeks > 0, "weeks must be positive")
    return TimeBinning(n_bins=weeks * bins_per_week(bin_seconds),
                       bin_seconds=bin_seconds,
                       start_seconds=start_seconds)
