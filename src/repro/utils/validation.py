"""Argument validation helpers used across the library.

The functions raise ``ValueError`` with a descriptive message so that call
sites stay compact while errors remain actionable.
"""

from __future__ import annotations

from typing import Any

import numpy as np

__all__ = ["require", "ensure_2d", "ensure_positive", "ensure_probability"]


def require(condition: bool, message: str) -> None:
    """Raise ``ValueError`` with *message* unless *condition* holds."""
    if not condition:
        raise ValueError(message)


def ensure_2d(array: Any, name: str = "array") -> np.ndarray:
    """Coerce *array* to a 2-D float ndarray, raising if that is impossible.

    Parameters
    ----------
    array:
        Array-like input; lists of lists and 2-D ndarrays are accepted.
    name:
        Name used in error messages.
    """
    result = np.asarray(array, dtype=float)
    if result.ndim != 2:
        raise ValueError(f"{name} must be 2-dimensional, got ndim={result.ndim}")
    if result.size == 0:
        raise ValueError(f"{name} must be non-empty")
    if not np.all(np.isfinite(result)):
        raise ValueError(f"{name} must contain only finite values")
    return result


def ensure_positive(value: float, name: str = "value") -> float:
    """Return *value* if strictly positive, otherwise raise ``ValueError``."""
    if not np.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a finite positive number, got {value!r}")
    return float(value)


def ensure_probability(value: float, name: str = "value") -> float:
    """Return *value* if it lies in the open interval (0, 1)."""
    if not np.isfinite(value) or not 0.0 < value < 1.0:
        raise ValueError(f"{name} must lie strictly between 0 and 1, got {value!r}")
    return float(value)
