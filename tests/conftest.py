"""Shared pytest fixtures.

Fixtures are session-scoped where generation is expensive so the suite stays
fast; tests must not mutate fixture objects in place (copy first).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import DatasetConfig, generate_abilene_dataset
from repro.topology import abilene_topology, random_backbone
from repro.traffic import ODTrafficGenerator
from repro.utils.timebins import TimeBinning


@pytest.fixture(scope="session")
def abilene():
    """The 11-PoP Abilene topology."""
    return abilene_topology()

@pytest.fixture(scope="session")
def small_network():
    """A small random backbone (5 PoPs) for topology-agnostic tests."""
    return random_backbone(5, seed=42)


@pytest.fixture(scope="session")
def one_day_binning():
    """One day of 5-minute bins."""
    return TimeBinning(n_bins=288, bin_seconds=300)


@pytest.fixture(scope="session")
def clean_series(abilene, one_day_binning):
    """One day of anomaly-free Abilene traffic (do not mutate; copy first)."""
    generator = ODTrafficGenerator(abilene, seed=5)
    return generator.generate(one_day_binning)


@pytest.fixture(scope="session")
def small_dataset():
    """Two days of Abilene traffic with a scaled-down anomaly schedule."""
    return generate_abilene_dataset(DatasetConfig(weeks=2.0 / 7.0), seed=11)


@pytest.fixture(scope="session")
def clean_dataset():
    """Two days of Abilene traffic without any injected anomalies."""
    return generate_abilene_dataset(DatasetConfig(weeks=2.0 / 7.0, schedule=None), seed=12)


@pytest.fixture()
def rng():
    """A per-test deterministic RNG."""
    return np.random.default_rng(1234)
