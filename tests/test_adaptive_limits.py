"""The adaptive (empirical-quantile) control-limit policy.

Covers the policy mechanics (freeze-on-alarm censoring, warm-up, clamped
drift, scale bounds), the zero-drift reduction property — with
``adaptive_max_drift = 0`` the adaptive policy must flag **exactly** the
bins the fixed :func:`~repro.core.limits.control_limits` policy flags, for
any stream and any chunking — and checkpoint restart parity of the
adaptive state.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.limits import ControlLimits
from repro.streaming import (
    AdaptiveControlLimits,
    StreamingConfig,
    StreamingNetworkDetector,
    StreamingSubspaceDetector,
    chunk_series,
    make_limits_policy,
    replay_network_anomalies,
    stream_detect,
)

_SETTINGS = settings(max_examples=25, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])

LIMITS = ControlLimits(spe=10.0, t2=5.0, confidence=0.999)


def _policy(**overrides):
    knobs = dict(confidence=0.999, warmup_bins=8, smoothing=0.5,
                 max_drift=0.25, block_bins=4, freeze_factor=4.0)
    knobs.update(overrides)
    return AdaptiveControlLimits(**knobs)


class TestPolicyMechanics:
    def test_starts_as_the_fixed_policy(self):
        policy = _policy()
        assert policy.scales == {"spe": 1.0, "t2": 1.0}
        assert policy.apply(LIMITS) == LIMITS

    @pytest.mark.parametrize("knobs", [
        {"confidence": 1.5},
        {"warmup_bins": 0},
        {"smoothing": 0.0},
        {"smoothing": 1.5},
        {"max_drift": -0.1},
        {"block_bins": 0},
        {"freeze_factor": 1.0},
        {"scale_bounds": (0.0, 8.0)},
        {"scale_bounds": (1.5, 8.0)},
        {"scale_bounds": (0.5, 0.9)},
    ])
    def test_rejects_invalid_knobs(self, knobs):
        with pytest.raises(ValueError):
            _policy(**knobs)

    def test_hot_statistics_raise_the_scale_gradually(self):
        policy = _policy(warmup_bins=1, max_drift=0.25)
        hot = np.full(4, 2.0 * LIMITS.spe)       # hot, but under the cap
        calm_t2 = np.full(4, 0.5 * LIMITS.t2)
        policy.observe(hot, calm_t2, LIMITS)
        # One block completed: the SPE scale moved up, clamped to +25%.
        assert policy.scales["spe"] == pytest.approx(1.25)
        assert policy.scales["t2"] == 1.0         # one-sided floor
        assert policy.n_updates == 2
        before = policy.scales["spe"]
        policy.observe(hot, calm_t2, LIMITS)
        assert policy.scales["spe"] == pytest.approx(before * 1.25)

    def test_freeze_on_alarm_censors_extreme_values(self):
        policy = _policy(warmup_bins=1, freeze_factor=4.0)
        anomalous = np.full(4, 100.0 * LIMITS.spe)  # way past the cap
        calm_t2 = np.full(4, 0.5 * LIMITS.t2)
        policy.observe(anomalous, calm_t2, LIMITS)
        # All four SPE values frozen: no SPE block completes, scale pinned.
        assert policy.scales["spe"] == 1.0
        assert policy.n_frozen_bins == 4

    def test_scale_decays_back_to_the_floor(self):
        policy = _policy(warmup_bins=1, max_drift=1.0, smoothing=1.0)
        hot = np.full(4, 3.0 * LIMITS.spe)
        calm_t2 = np.full(4, 0.5 * LIMITS.t2)
        policy.observe(hot, calm_t2, LIMITS)
        assert policy.scales["spe"] > 1.0
        for _ in range(8):
            policy.observe(np.full(4, 0.1 * LIMITS.spe), calm_t2, LIMITS)
        assert policy.scales["spe"] == 1.0        # back at the floor

    def test_scale_bounds_cap_total_drift(self):
        policy = _policy(warmup_bins=1, max_drift=10.0, smoothing=1.0,
                         freeze_factor=1e9, scale_bounds=(1.0, 2.0))
        calm_t2 = np.full(4, 0.5 * LIMITS.t2)
        for _ in range(5):
            policy.observe(np.full(4, 100.0 * LIMITS.spe), calm_t2, LIMITS)
        assert policy.scales["spe"] == 2.0

    def test_warmup_discards_early_blocks(self):
        policy = _policy(warmup_bins=1000)
        hot = np.full(8, 2.0 * LIMITS.spe)
        policy.observe(hot, hot, LIMITS)
        assert policy.n_updates == 0
        assert policy.scales == {"spe": 1.0, "t2": 1.0}
        assert not policy.is_warmed_up

    def test_state_roundtrip_is_exact(self):
        policy = _policy(warmup_bins=1)
        rng = np.random.default_rng(7)
        for _ in range(5):
            policy.observe(rng.gamma(2.0, LIMITS.spe, size=7),
                           rng.gamma(2.0, LIMITS.t2, size=7), LIMITS)
        state = policy.state_dict()
        twin = AdaptiveControlLimits.from_state(state["meta"],
                                                state["arrays"])
        assert twin.scales == policy.scales
        assert twin.n_clean_bins == policy.n_clean_bins
        assert twin.n_frozen_bins == policy.n_frozen_bins
        assert twin.n_updates == policy.n_updates
        assert twin.state_dict()["meta"] == state["meta"]
        for key, value in state["arrays"].items():
            np.testing.assert_array_equal(twin.state_dict()["arrays"][key],
                                          value)

    def test_rejects_unknown_state_kind(self):
        state = _policy().state_dict()
        state["meta"]["kind"] = "something-else"
        with pytest.raises(ValueError):
            AdaptiveControlLimits.from_state(state["meta"], state["arrays"])


class TestConfigWiring:
    def test_fixed_config_has_no_policy(self):
        assert make_limits_policy(StreamingConfig()) is None
        assert StreamingSubspaceDetector(StreamingConfig()).limits_policy is None

    def test_adaptive_config_builds_the_policy(self):
        config = StreamingConfig(limits="adaptive", adaptive_warmup_bins=7,
                                 adaptive_smoothing=0.3,
                                 adaptive_max_drift=0.1,
                                 adaptive_block_bins=9,
                                 adaptive_freeze_factor=3.0)
        policy = make_limits_policy(config)
        assert isinstance(policy, AdaptiveControlLimits)
        detector = StreamingSubspaceDetector(config)
        assert isinstance(detector.limits_policy, AdaptiveControlLimits)
        state = detector.limits_policy.state_dict()["meta"]
        assert state["warmup_bins"] == 7
        assert state["smoothing"] == 0.3
        assert state["max_drift"] == 0.1
        assert state["block_bins"] == 9
        assert state["freeze_factor"] == 3.0

    @pytest.mark.parametrize("knobs", [
        {"limits": "quantile"},
        {"adaptive_warmup_bins": 0},
        {"adaptive_smoothing": 0.0},
        {"adaptive_max_drift": -1.0},
        {"adaptive_block_bins": 0},
        {"adaptive_freeze_factor": 1.0},
    ])
    def test_config_rejects_invalid_knobs(self, knobs):
        with pytest.raises(ValueError):
            StreamingConfig(**knobs)

    def test_replay_rejects_adaptive_limits(self, small_dataset):
        with pytest.raises(ValueError, match="fixed control-limit"):
            replay_network_anomalies(small_dataset.series, 64,
                                     StreamingConfig(limits="adaptive"))

    def test_config_roundtrips_through_dict(self):
        config = StreamingConfig(limits="adaptive", adaptive_max_drift=0.2)
        assert StreamingConfig.from_dict(config.to_dict()) == config


def _synthetic_stream(seed, n_bins, n_features):
    rng = np.random.default_rng(seed)
    latent = rng.normal(size=(n_bins, 3))
    mixing = rng.normal(size=(3, n_features)) * np.array([[5.0], [3.0], [2.0]])
    return latent @ mixing + rng.normal(scale=0.5, size=(n_bins, n_features)) + 30.0


class TestZeroDriftReduction:
    """``adaptive_max_drift = 0`` must reduce to the fixed policy exactly."""

    @_SETTINGS
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           chunk=st.integers(min_value=1, max_value=40),
           n_features=st.integers(min_value=5, max_value=12))
    def test_flags_identical_bins_on_any_stream(self, seed, chunk, n_features):
        stream = _synthetic_stream(seed, 120, n_features)
        base = dict(min_train_bins=16, recalibrate_every_bins=8,
                    identify=False)
        fixed = StreamingSubspaceDetector(StreamingConfig(**base))
        adaptive = StreamingSubspaceDetector(StreamingConfig(
            limits="adaptive", adaptive_max_drift=0.0,
            adaptive_warmup_bins=1, adaptive_block_bins=4, **base))
        for start in range(0, stream.shape[0], chunk):
            block = stream[start:start + chunk]
            result_fixed = fixed.process_chunk(block)
            result_adaptive = adaptive.process_chunk(block)
            assert result_adaptive.warmup == result_fixed.warmup
            assert (result_adaptive.anomalous_bins
                    == result_fixed.anomalous_bins)
            if not result_fixed.warmup:
                assert result_adaptive.limits == result_fixed.limits

    def test_full_pipeline_events_identical(self, small_dataset):
        base = dict(min_train_bins=128, recalibrate_every_bins=32)
        fixed = stream_detect(chunk_series(small_dataset.series, 48),
                              StreamingConfig(**base))
        adaptive = stream_detect(
            chunk_series(small_dataset.series, 48),
            StreamingConfig(limits="adaptive", adaptive_max_drift=0.0, **base))
        assert adaptive.events == fixed.events
        assert adaptive.detections == fixed.detections


class TestCheckpointRestartParity:
    """A restored adaptive-limits detector emits the identical remaining
    event list (the tentpole's restart-parity guarantee)."""

    CHUNK = 48

    @pytest.fixture(scope="class")
    def adaptive_config(self):
        return StreamingConfig(min_train_bins=128, recalibrate_every_bins=32,
                               limits="adaptive", adaptive_warmup_bins=32,
                               adaptive_block_bins=16,
                               adaptive_max_drift=0.2)

    @pytest.fixture(scope="class")
    def uninterrupted(self, small_dataset, adaptive_config):
        return stream_detect(chunk_series(small_dataset.series, self.CHUNK),
                             adaptive_config)

    @pytest.mark.parametrize("split", [3, 7])
    def test_restart_emits_identical_remaining_events(
            self, small_dataset, adaptive_config, uninterrupted, tmp_path,
            split):
        chunks = list(chunk_series(small_dataset.series, self.CHUNK))
        detector = StreamingNetworkDetector(adaptive_config)
        for chunk in chunks[:split]:
            detector.process_chunk(chunk)
        detector.save(tmp_path / "ckpt")

        restored = StreamingNetworkDetector.restore(tmp_path / "ckpt")
        for chunk in chunks[split:]:
            restored.process_chunk(chunk)
        report = restored.finish()
        assert report.events == uninterrupted.events
        # Wall-clock throughput legitimately differs between the two runs;
        # everything else must match exactly.
        wall_clock = {"runtime_seconds", "bins_per_second"}
        restarted_dict = {k: v for k, v in report.to_dict().items()
                          if k not in wall_clock}
        uninterrupted_dict = {k: v for k, v in uninterrupted.to_dict().items()
                              if k not in wall_clock}
        assert restarted_dict == uninterrupted_dict

    def test_policy_state_survives_the_checkpoint(self, small_dataset,
                                                  adaptive_config, tmp_path):
        chunks = list(chunk_series(small_dataset.series, self.CHUNK))
        detector = StreamingNetworkDetector(adaptive_config)
        for chunk in chunks[:6]:
            detector.process_chunk(chunk)
        detector.save(tmp_path / "ckpt")
        restored = StreamingNetworkDetector.restore(tmp_path / "ckpt")
        for traffic_type in small_dataset.series.traffic_types:
            original = detector.detector(traffic_type).limits_policy
            twin = restored.detector(traffic_type).limits_policy
            assert twin is not None
            assert twin.scales == original.scales
            assert twin.n_clean_bins == original.n_clean_bins
            assert twin.n_frozen_bins == original.n_frozen_bins
            original_arrays = original.state_dict()["arrays"]
            for key, value in twin.state_dict()["arrays"].items():
                np.testing.assert_array_equal(value, original_arrays[key])

    def test_mismatched_policy_state_is_rejected(self, small_dataset,
                                                 adaptive_config):
        detector = StreamingSubspaceDetector(adaptive_config)
        detector.process_chunk(small_dataset.series.matrix("bytes")[:200])
        state = detector.state_dict()
        fixed_config = StreamingConfig(min_train_bins=128)
        with pytest.raises(ValueError, match="adaptive-limits state"):
            StreamingSubspaceDetector.from_state(fixed_config, state["meta"],
                                                 state["arrays"])
