"""Unit tests for the anomaly injection substrate."""

import numpy as np
import pytest

from repro.anomalies import (
    AlphaInjector,
    AnomalyScheduler,
    AnomalyType,
    DosInjector,
    FlashCrowdInjector,
    GroundTruthAnomaly,
    GroundTruthLog,
    IngressShiftInjector,
    InjectionContext,
    OutageInjector,
    PointMultipointInjector,
    ScanInjector,
    ScheduleConfig,
    WormInjector,
)
from repro.flows.composition import FlowCompositionModel
from repro.flows.timeseries import TrafficType
from repro.utils.timebins import TimeBinning


@pytest.fixture()
def context(abilene, clean_series):
    """A fresh injection context over a copy of the clean one-day series."""
    return InjectionContext(
        network=abilene,
        series=clean_series.copy(),
        composition=FlowCompositionModel(abilene, seed=0),
        ground_truth=GroundTruthLog(),
        rng=np.random.default_rng(0),
    )


class TestGroundTruth:
    def test_anomaly_bins_and_duration(self):
        anomaly = GroundTruthAnomaly(
            anomaly_id=0, anomaly_type=AnomalyType.ALPHA, start_bin=10, end_bin=12,
            od_pairs=(("A", "B"),), expected_traffic_types=frozenset({TrafficType.BYTES}))
        assert anomaly.bins == (10, 11, 12)
        assert anomaly.duration_bins == 3
        assert anomaly.duration_minutes() == 15.0
        assert anomaly.overlaps_bins([12])
        assert anomaly.overlaps_window(0, 10)
        assert not anomaly.overlaps_window(13, 20)

    def test_log_unique_ids_and_queries(self):
        log = GroundTruthLog()
        for i, anomaly_type in enumerate((AnomalyType.ALPHA, AnomalyType.DOS)):
            log.add(GroundTruthAnomaly(
                anomaly_id=i, anomaly_type=anomaly_type, start_bin=i * 10,
                end_bin=i * 10 + 1, od_pairs=(("A", "B"),),
                expected_traffic_types=frozenset({TrafficType.BYTES})))
        assert len(log) == 2
        assert log.next_id() == 2
        assert len(log.by_type(AnomalyType.ALPHA)) == 1
        assert len(log.overlapping_bins([0])) == 1
        assert log.type_counts()[AnomalyType.DOS] == 1
        with pytest.raises(ValueError):
            log.add(GroundTruthAnomaly(
                anomaly_id=0, anomaly_type=AnomalyType.SCAN, start_bin=0, end_bin=0,
                od_pairs=(("A", "B"),),
                expected_traffic_types=frozenset({TrafficType.FLOWS})))

    def test_shifted(self):
        log = GroundTruthLog([GroundTruthAnomaly(
            anomaly_id=0, anomaly_type=AnomalyType.ALPHA, start_bin=10, end_bin=11,
            od_pairs=(("A", "B"),), expected_traffic_types=frozenset({TrafficType.BYTES}))])
        shifted = log.shifted(-5)
        assert shifted.anomalies[0].start_bin == 5


class TestVolumeInjectors:
    def _delta(self, context, before, traffic_type, od_pair, bins):
        column = context.series.od_index(*od_pair)
        after = context.series.matrix(traffic_type)[bins, column]
        return after - before.matrix(traffic_type)[bins, column]

    def test_alpha_adds_bytes_to_single_od(self, context):
        before = context.series.copy()
        injector = AlphaInjector(start_bin=20, duration_bins=2,
                                 od_pair=("LOSA", "NYCM"), magnitude=5.0)
        anomaly = injector.inject(context)
        assert anomaly.anomaly_type is AnomalyType.ALPHA
        assert anomaly.od_pairs == (("LOSA", "NYCM"),)
        delta = self._delta(context, before, TrafficType.BYTES, ("LOSA", "NYCM"), [20, 21])
        network_mean = before.matrix(TrafficType.BYTES).mean()
        assert np.all(delta > 4.5 * network_mean)
        # other OD pairs untouched
        other = context.series.od_series(TrafficType.BYTES, "CHIN", "WASH")
        assert np.allclose(other, before.od_series(TrafficType.BYTES, "CHIN", "WASH"))

    def test_alpha_registers_dominant_flow_group(self, context):
        injector = AlphaInjector(start_bin=20, duration_bins=1,
                                 od_pair=("LOSA", "NYCM"), magnitude=6.0)
        injector.inject(context)
        groups = context.composition.injected_groups(("LOSA", "NYCM"), 20)
        assert len(groups) == 1
        assert groups[0].label == "alpha"
        assert groups[0].n_src_addresses == 1 and groups[0].n_dst_addresses == 1

    def test_dos_is_packet_flow_heavy_not_byte_heavy(self, context):
        before = context.series.copy()
        injector = DosInjector(start_bin=30, duration_bins=2,
                               od_pairs=[("CHIN", "WASH")], magnitude=6.0,
                               packets_per_flow=3.0)
        anomaly = injector.inject(context)
        assert anomaly.anomaly_type is AnomalyType.DOS
        packet_delta = self._delta(context, before, TrafficType.PACKETS,
                                   ("CHIN", "WASH"), [30])
        byte_delta = self._delta(context, before, TrafficType.BYTES,
                                 ("CHIN", "WASH"), [30])
        rel_packets = packet_delta[0] / before.matrix(TrafficType.PACKETS).mean()
        rel_bytes = byte_delta[0] / before.matrix(TrafficType.BYTES).mean()
        assert rel_packets > 5.0
        assert rel_bytes < 1.0

    def test_ddos_spans_multiple_od_pairs_same_victim(self, context):
        pairs = [("CHIN", "WASH"), ("LOSA", "WASH"), ("STTL", "WASH")]
        injector = DosInjector(start_bin=40, duration_bins=1, od_pairs=pairs,
                               magnitude=9.0)
        anomaly = injector.inject(context)
        assert anomaly.anomaly_type is AnomalyType.DDOS
        assert set(anomaly.od_pairs) == set(pairs)
        # all attack groups share one victim address
        victims = {g.dst_address
                   for pair in pairs
                   for g in context.composition.injected_groups(pair, 40)}
        assert len(victims) == 1

    def test_dos_requires_single_victim_pop(self):
        with pytest.raises(ValueError):
            DosInjector(start_bin=0, duration_bins=1,
                        od_pairs=[("A", "B"), ("A", "C")])

    def test_flash_crowd_flow_heavy_with_service_port(self, context):
        before = context.series.copy()
        injector = FlashCrowdInjector(start_bin=50, duration_bins=1,
                                      od_pair=("ATLA", "SNVA"), magnitude=6.0,
                                      service_port=80)
        anomaly = injector.inject(context)
        assert anomaly.attributes["service_port"] == 80
        flow_delta = self._delta(context, before, TrafficType.FLOWS, ("ATLA", "SNVA"), [50])
        assert flow_delta[0] > 5.0 * before.matrix(TrafficType.FLOWS).mean()
        groups = context.composition.injected_groups(("ATLA", "SNVA"), 50)
        assert groups[0].dst_port == 80
        assert groups[0].n_src_addresses > 10  # many clients
        assert groups[0].n_dst_addresses == 1  # one server

    def test_scan_one_packet_per_flow(self, context):
        injector = ScanInjector(start_bin=60, duration_bins=1,
                                od_pair=("DNVR", "HSTN"), magnitude=5.0,
                                network_scan=True, target_port=139)
        injector.inject(context)
        group = context.composition.injected_groups(("DNVR", "HSTN"), 60)[0]
        assert group.packets / group.flows < 1.5
        assert group.n_src_addresses == 1      # single scanner
        assert group.n_dst_addresses > 1       # many targets
        assert group.dst_port == 139

    def test_port_scan_spreads_ports_not_addresses(self, context):
        injector = ScanInjector(start_bin=60, duration_bins=1,
                                od_pair=("DNVR", "HSTN"), magnitude=5.0,
                                network_scan=False)
        injector.inject(context)
        group = context.composition.injected_groups(("DNVR", "HSTN"), 60)[0]
        assert group.n_dst_addresses == 1
        assert group.n_dst_ports > 1

    def test_worm_spreads_across_od_pairs_single_port(self, context):
        pairs = [("CHIN", "ATLA"), ("NYCM", "LOSA")]
        injector = WormInjector(start_bin=70, duration_bins=1, od_pairs=pairs,
                                magnitude=8.0, worm_port=1433)
        anomaly = injector.inject(context)
        assert anomaly.anomaly_type is AnomalyType.WORM
        for pair in pairs:
            group = context.composition.injected_groups(pair, 70)[0]
            assert group.dst_port == 1433
            assert group.n_src_addresses > 1
            assert group.n_dst_addresses > 1

    def test_point_multipoint_single_server_many_clients(self, context):
        pairs = [("WASH", "LOSA"), ("WASH", "SNVA")]
        injector = PointMultipointInjector(start_bin=80, duration_bins=1,
                                           od_pairs=pairs, magnitude=7.0,
                                           content_port=119)
        anomaly = injector.inject(context)
        assert anomaly.anomaly_type is AnomalyType.POINT_MULTIPOINT
        sources = {context.composition.injected_groups(pair, 80)[0].src_address
                   for pair in pairs}
        assert len(sources) == 1
        assert anomaly.attributes["content_port"] == 119

    def test_point_multipoint_requires_common_origin(self):
        with pytest.raises(ValueError):
            PointMultipointInjector(start_bin=0, duration_bins=1,
                                    od_pairs=[("A", "B"), ("C", "B")])

    def test_window_validation(self, context):
        injector = AlphaInjector(start_bin=10_000, duration_bins=1,
                                 od_pair=("LOSA", "NYCM"))
        with pytest.raises(ValueError):
            injector.inject(context)


class TestOperationalInjectors:
    def test_outage_zeroes_traffic_of_pop(self, context):
        injector = OutageInjector(start_bin=100, duration_bins=12, pop="LOSA",
                                  residual_fraction=0.0)
        anomaly = injector.inject(context)
        assert anomaly.anomaly_type is AnomalyType.OUTAGE
        assert len(anomaly.od_pairs) == 20  # 2 * (11 - 1) directed pairs
        losa_out = context.series.od_series(TrafficType.BYTES, "LOSA", "NYCM")
        assert np.all(losa_out[100:112] == 0.0)
        assert losa_out[99] > 0.0
        # unrelated OD pairs untouched
        assert context.series.od_series(TrafficType.BYTES, "CHIN", "WASH")[105] > 0

    def test_outage_residual_fraction(self, context):
        before = context.series.copy()
        OutageInjector(start_bin=100, duration_bins=2, pop="LOSA",
                       residual_fraction=0.1).inject(context)
        before_value = before.od_series(TrafficType.FLOWS, "LOSA", "NYCM")[100]
        after_value = context.series.od_series(TrafficType.FLOWS, "LOSA", "NYCM")[100]
        assert after_value == pytest.approx(0.1 * before_value, rel=1e-6)

    def test_ingress_shift_moves_traffic(self, context):
        before = context.series.copy()
        injector = IngressShiftInjector(start_bin=120, duration_bins=6,
                                        from_pop="LOSA", to_pop="SNVA",
                                        shifted_fraction=0.5, customer="CALREN")
        anomaly = injector.inject(context)
        assert anomaly.anomaly_type is AnomalyType.INGRESS_SHIFT
        for traffic_type in TrafficType.all():
            moved_from = (before.od_series(traffic_type, "LOSA", "NYCM")[121]
                          - context.series.od_series(traffic_type, "LOSA", "NYCM")[121])
            moved_to = (context.series.od_series(traffic_type, "SNVA", "NYCM")[121]
                        - before.od_series(traffic_type, "SNVA", "NYCM")[121])
            assert moved_from > 0
            assert moved_to == pytest.approx(moved_from, rel=1e-9)

    def test_ingress_shift_conserves_totals(self, context):
        before_total = context.series.total_series(TrafficType.FLOWS).sum()
        IngressShiftInjector(start_bin=120, duration_bins=6, from_pop="LOSA",
                             to_pop="SNVA", shifted_fraction=0.6).inject(context)
        after_total = context.series.total_series(TrafficType.FLOWS).sum()
        assert after_total == pytest.approx(before_total, rel=1e-9)

    def test_ingress_shift_requires_distinct_pops(self):
        with pytest.raises(ValueError):
            IngressShiftInjector(start_bin=0, duration_bins=1,
                                 from_pop="LOSA", to_pop="LOSA")


class TestScheduler:
    def test_schedule_counts_scale_with_weeks(self, abilene):
        config = ScheduleConfig()
        full = config.scaled_counts(2016, 300)
        half = config.scaled_counts(1008, 300)
        assert full[AnomalyType.ALPHA] == 30
        assert half[AnomalyType.ALPHA] == 15

    def test_build_schedule_is_sorted_and_inside_range(self, abilene):
        binning = TimeBinning(n_bins=2016)
        scheduler = AnomalyScheduler(abilene, seed=5)
        injectors = scheduler.build_schedule(binning)
        starts = [injector.start_bin for injector in injectors]
        assert starts == sorted(starts)
        assert all(injector.end_bin < binning.n_bins for injector in injectors)
        assert len(injectors) > 40

    def test_schedule_windows_do_not_overlap(self, abilene):
        binning = TimeBinning(n_bins=2016)
        scheduler = AnomalyScheduler(abilene, seed=6)
        injectors = scheduler.build_schedule(binning)
        occupied = set()
        for injector in injectors:
            window = set(injector.bins)
            assert not (window & occupied)
            occupied |= window

    def test_schedule_reproducible(self, abilene):
        binning = TimeBinning(n_bins=1008)
        a = AnomalyScheduler(abilene, seed=7).build_schedule(binning)
        b = AnomalyScheduler(abilene, seed=7).build_schedule(binning)
        assert [(i.start_bin, type(i).__name__) for i in a] == \
               [(i.start_bin, type(i).__name__) for i in b]

    def test_apply_populates_ground_truth(self, context):
        scheduler = AnomalyScheduler(context.network, seed=8)
        log = scheduler.apply(context)
        assert len(log) > 0
        assert log is context.ground_truth
        counts = log.type_counts()
        assert AnomalyType.ALPHA in counts
