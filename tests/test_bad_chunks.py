"""Malformed-chunk handling: clear diagnostics or counted-and-skipped.

A collector glitch shows up as NaN/Inf cells or a chunk whose column
count disagrees with the stream's OD-flow dimension.  Under the default
``on_bad_chunk="raise"`` the run dies with a diagnostic naming the
chunk, traffic type, and defect; under ``"quarantine"`` the chunk is
counted (``bad_chunks`` metric, ``report.n_bad_chunks``) and skipped
without perturbing the model or the aggregator watermark.
"""

import numpy as np
import pytest

from repro.flows.timeseries import TrafficType
from repro.streaming import (StreamingConfig, StreamingNetworkDetector,
                             TrafficChunk)

P = 12
BINS = 8


def _chunk(start_bin, n_bins=BINS, n_cols=P, poison=None, seed=0):
    rng = np.random.default_rng(seed + start_bin)
    matrix = rng.gamma(4.0, 25.0, size=(n_bins, n_cols))
    if poison is not None:
        matrix[n_bins // 2, n_cols // 2] = poison
    return TrafficChunk(start_bin=start_bin,
                        matrices={TrafficType.BYTES: matrix})


def _config(**overrides):
    base = dict(min_train_bins=16, recalibrate_every_bins=8, use_t2=False)
    base.update(overrides)
    return StreamingConfig(**base)


class TestRaisePolicy:
    def test_nan_chunk_raises_with_diagnostic(self):
        detector = StreamingNetworkDetector(_config())
        detector.process_chunk(_chunk(0))
        with pytest.raises(ValueError) as excinfo:
            detector.process_chunk(_chunk(BINS, poison=np.nan))
        message = str(excinfo.value)
        assert "malformed traffic chunk" in message
        assert f"bin {BINS}" in message
        assert "non-finite" in message
        assert "bytes" in message

    def test_inf_chunk_raises(self):
        detector = StreamingNetworkDetector(_config())
        detector.process_chunk(_chunk(0))
        with pytest.raises(ValueError, match="non-finite"):
            detector.process_chunk(_chunk(BINS, poison=np.inf))

    def test_wrong_column_count_raises_with_expected_width(self):
        detector = StreamingNetworkDetector(_config())
        detector.process_chunk(_chunk(0))
        with pytest.raises(ValueError) as excinfo:
            detector.process_chunk(_chunk(BINS, n_cols=P - 3))
        message = str(excinfo.value)
        assert f"has {P - 3} columns" in message
        assert f"expected {P}" in message

    def test_ingest_path_checks_too(self):
        detector = StreamingNetworkDetector(_config())
        detector.ingest_chunk(_chunk(0))
        with pytest.raises(ValueError, match="non-finite"):
            detector.ingest_chunk(_chunk(BINS, poison=np.nan))


class TestQuarantinePolicy:
    def test_bad_chunks_counted_and_skipped(self):
        detector = StreamingNetworkDetector(
            _config(on_bad_chunk="quarantine"))
        detector.process_chunk(_chunk(0))
        assert detector.process_chunk(_chunk(BINS, poison=np.nan)) == []
        assert detector.process_chunk(_chunk(BINS, n_cols=P + 2)) == []
        detector.process_chunk(_chunk(BINS))
        report = detector.finish()
        assert report.n_bad_chunks == 2
        # Skipped chunks advance neither the bin nor the chunk counters.
        assert report.n_chunks_processed == 2
        assert report.n_bins_processed == 2 * BINS

    def test_skipped_chunk_leaves_model_untouched(self):
        clean = StreamingNetworkDetector(
            _config(on_bad_chunk="quarantine"))
        dirty = StreamingNetworkDetector(
            _config(on_bad_chunk="quarantine"))
        for start in (0, BINS, 2 * BINS):
            clean.process_chunk(_chunk(start))
            dirty.process_chunk(_chunk(start))
            dirty.process_chunk(_chunk(start + BINS, poison=np.nan, seed=99))
        clean_report = clean.finish()
        dirty_report = dirty.finish()
        assert dirty_report.n_bad_chunks == 3
        assert clean_report.events == dirty_report.events
        assert (clean_report.n_bins_processed
                == dirty_report.n_bins_processed)

    def test_bad_chunks_metric_increments(self):
        detector = StreamingNetworkDetector(
            _config(on_bad_chunk="quarantine", telemetry=True))
        detector.process_chunk(_chunk(0))
        detector.process_chunk(_chunk(BINS, poison=np.inf))
        assert detector.telemetry.registry.value("bad_chunks") == 1

    def test_bad_chunk_count_survives_report_round_trip(self):
        detector = StreamingNetworkDetector(
            _config(on_bad_chunk="quarantine"))
        detector.process_chunk(_chunk(0))
        detector.process_chunk(_chunk(BINS, poison=np.nan))
        report = detector.report
        from repro.streaming.pipeline import StreamingReport
        restored = StreamingReport.from_dict(report.to_dict())
        assert restored.n_bad_chunks == 1


class TestConfig:
    def test_policy_validated(self):
        with pytest.raises(ValueError, match="on_bad_chunk"):
            StreamingConfig(on_bad_chunk="drop")

    def test_round_trips_through_dict(self):
        config = StreamingConfig(on_bad_chunk="quarantine")
        assert StreamingConfig.from_dict(
            config.to_dict()).on_bad_chunk == "quarantine"
