"""Unit tests for the per-flow baseline detectors."""

import numpy as np
import pytest

from repro.baselines import EWMADetector, FourierDetector, WaveletDetector


def _seasonal_matrix(n=576, p=8, seed=0, spikes=()):
    rng = np.random.default_rng(seed)
    time = np.arange(n)
    base = 100.0 + 40.0 * np.sin(2 * np.pi * time / 288.0)
    scale = rng.uniform(0.5, 2.0, size=p)
    data = np.outer(base, scale) + rng.normal(0, 3.0, size=(n, p))
    data = np.clip(data, 0, None)
    for bin_index, flow, magnitude in spikes:
        data[bin_index, flow] += magnitude
    return data


ALL_DETECTORS = [
    pytest.param(EWMADetector, id="ewma"),
    pytest.param(WaveletDetector, id="wavelet"),
    pytest.param(FourierDetector, id="fourier"),
]


@pytest.mark.parametrize("detector_class", ALL_DETECTORS)
class TestCommonBehaviour:
    def test_scores_shape_and_nonnegative(self, detector_class):
        data = _seasonal_matrix()
        scores = detector_class().score(data)
        assert scores.shape == data.shape
        assert np.all(scores >= 0)

    def test_detects_large_spike(self, detector_class):
        data = _seasonal_matrix(spikes=[(300, 2, 400.0)])
        result = detector_class(quantile=0.999).detect(data)
        assert 300 in result.anomalous_bins()
        assert 2 in result.flows_at(300)

    def test_quantile_controls_flag_budget(self, detector_class):
        data = _seasonal_matrix()
        loose = detector_class(quantile=0.99).detect(data)
        tight = detector_class(quantile=0.9999).detect(data)
        assert tight.n_flagged_cells <= loose.n_flagged_cells

    def test_explicit_threshold_respected(self, detector_class):
        data = _seasonal_matrix()
        result = detector_class(threshold=1e12).detect(data)
        assert result.n_flagged_cells == 0
        assert result.threshold == 1e12

    def test_detection_rate_between_zero_and_one(self, detector_class):
        result = detector_class().detect(_seasonal_matrix())
        assert 0.0 <= result.detection_rate() <= 1.0


class TestEWMASpecifics:
    def test_warmup_bins_not_flagged(self):
        data = _seasonal_matrix(spikes=[(5, 0, 500.0)])
        result = EWMADetector(warmup_bins=12, quantile=0.999).detect(data)
        assert 5 not in result.anomalous_bins()

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            EWMADetector(alpha=1.5)

    def test_score_resets_are_deterministic(self):
        data = _seasonal_matrix()
        a = EWMADetector().score(data)
        b = EWMADetector().score(data)
        assert np.allclose(a, b)


class TestWaveletSpecifics:
    def test_levels_must_be_nonnegative(self):
        with pytest.raises(ValueError):
            WaveletDetector(levels=[-1])

    def test_excluding_fine_levels_misses_single_bin_spike(self):
        data = _seasonal_matrix(spikes=[(300, 2, 200.0)])
        fine = WaveletDetector(levels=(0, 1), quantile=0.999).detect(data)
        coarse_only = WaveletDetector(levels=(6,), quantile=0.999).detect(data)
        fine_score = fine.scores[300, 2]
        coarse_score = coarse_only.scores[300, 2]
        assert fine_score > coarse_score


class TestFourierSpecifics:
    def test_removes_seasonality(self):
        data = _seasonal_matrix()
        scores = FourierDetector(n_components=10).score(data)
        # After removing the strongest components, the scores should show no
        # strong diurnal autocorrelation.
        series = scores[:, 0]
        lag = 288
        a = series[:-lag] - series[:-lag].mean()
        b = series[lag:] - series[lag:].mean()
        autocorr = np.sum(a * b) / np.sqrt(np.sum(a**2) * np.sum(b**2))
        assert abs(autocorr) < 0.3

    def test_zero_components_keeps_only_mean(self):
        data = _seasonal_matrix()
        scores = FourierDetector(n_components=0).score(data)
        assert scores.shape == data.shape

    def test_invalid_component_count(self):
        with pytest.raises(ValueError):
            FourierDetector(n_components=-1)
