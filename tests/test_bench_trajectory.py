"""The benchmark-trajectory tool: consolidation and regression gating.

``tools/bench_trajectory.py`` is repo tooling (not part of the ``repro``
package), so it is loaded here by file path.  The tests cover the behaviors
CI relies on: artifacts (flat and sectioned) consolidate into one
trajectory keyed by benchmark name, speedup-ratio and parity-recall
regressions beyond tolerance fail, baseline records with no fresh artifact
fail distinctly (exit code 2) unless ``--allow-missing`` marks the run as
deliberately partial, an empty artifact directory always fails, and the
markdown summary table renders every tracked metric for
``$GITHUB_STEP_SUMMARY``.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_TOOL_PATH = Path(__file__).resolve().parent.parent / "tools" / "bench_trajectory.py"
_spec = importlib.util.spec_from_file_location("bench_trajectory", _TOOL_PATH)
bench_trajectory = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_trajectory)


def _write(path: Path, payload) -> Path:
    path.write_text(json.dumps(payload))
    return path


@pytest.fixture()
def artifact_dir(tmp_path):
    directory = tmp_path / "artifacts"
    directory.mkdir()
    _write(directory / "bench_flat.json", {
        "benchmark": "bench_flat",
        "baseline_bins_per_sec": 4000.0,
        "parallel_speedup_vs_baseline": 2.0,
        "parity": {"recall": 1.0, "span_recall": 0.95, "exact": True,
                   "missing": [], "extra": []},
        "gate": {"min_speedup": 1.5},
    })
    _write(directory / "bench_sectioned.json", {
        "recalibration": {
            "benchmark": "bench_recal",
            "lowrank_speedup": 50.0,
            "gate": {"min_speedup": 5.0},
        },
        "parity_section": {
            "benchmark": "bench_parity",
            "parity": {"sharded": {"recall": 1.0, "span_recall": 1.0},
                       "parallel": {"recall": 0.9}},
        },
    })
    return directory


class TestConsolidate:
    def test_merges_flat_and_sectioned_artifacts(self, artifact_dir, tmp_path):
        output = tmp_path / "BENCH.json"
        payload = bench_trajectory.consolidate(artifact_dir, output)
        assert set(payload["benchmarks"]) == {"bench_flat", "bench_recal",
                                              "bench_parity"}
        on_disk = json.loads(output.read_text())
        assert on_disk["schema"] == bench_trajectory.SCHEMA_VERSION
        assert on_disk["benchmarks"]["bench_recal"]["lowrank_speedup"] == 50.0

    def test_reconsolidating_a_partial_run_keeps_absent_records(
            self, artifact_dir, tmp_path):
        """A local run of one benchmark must not drop the others' baselines
        (and thereby their gating) from the trajectory."""
        output = tmp_path / "BENCH.json"
        bench_trajectory.consolidate(artifact_dir, output)
        (artifact_dir / "bench_sectioned.json").unlink()
        record = json.loads((artifact_dir / "bench_flat.json").read_text())
        record["parallel_speedup_vs_baseline"] = 2.5
        _write(artifact_dir / "bench_flat.json", record)
        payload = bench_trajectory.consolidate(artifact_dir, output)
        assert set(payload["benchmarks"]) == {"bench_flat", "bench_recal",
                                              "bench_parity"}
        assert (payload["benchmarks"]["bench_flat"]
                ["parallel_speedup_vs_baseline"]) == 2.5

    def test_cli_consolidate(self, artifact_dir, tmp_path, capsys):
        output = tmp_path / "BENCH.json"
        code = bench_trajectory.main(["consolidate",
                                      "--artifacts", str(artifact_dir),
                                      "--baseline", str(output)])
        assert code == 0
        assert "3 benchmark record(s)" in capsys.readouterr().out


class TestCheck:
    def _baseline(self, artifact_dir, tmp_path):
        baseline = tmp_path / "BENCH.json"
        bench_trajectory.consolidate(artifact_dir, baseline)
        return baseline

    def test_identical_run_passes(self, artifact_dir, tmp_path):
        baseline = self._baseline(artifact_dir, tmp_path)
        assert bench_trajectory.check(baseline, artifact_dir, 0.1) == []

    def test_speedup_regression_beyond_tolerance_fails(self, artifact_dir,
                                                       tmp_path):
        baseline = self._baseline(artifact_dir, tmp_path)
        record = json.loads((artifact_dir / "bench_flat.json").read_text())
        record["parallel_speedup_vs_baseline"] = 0.9   # 2.0 -> 0.9: -55%
        _write(artifact_dir / "bench_flat.json", record)
        failures = bench_trajectory.check(baseline, artifact_dir, 0.5)
        assert len(failures) == 1
        assert "parallel_speedup_vs_baseline" in failures[0]
        # A generous-enough tolerance accepts the same drop.
        assert bench_trajectory.check(baseline, artifact_dir, 0.6) == []

    def test_disabled_gate_skips_speedup_but_not_recalls(self, artifact_dir,
                                                         tmp_path, capsys):
        """A record whose own bench declared gate.enforced=false (an
        un-baselined machine) is exempt from speedup gating — but parity
        recalls are machine-independent and stay gated."""
        baseline = self._baseline(artifact_dir, tmp_path)
        record = json.loads((artifact_dir / "bench_flat.json").read_text())
        record["parallel_speedup_vs_baseline"] = 0.01
        record["parity"]["span_recall"] = 0.2
        record["gate"] = {"min_speedup": 1.5, "enforced": False}
        _write(artifact_dir / "bench_flat.json", record)
        failures = bench_trajectory.check(baseline, artifact_dir, 0.5)
        assert len(failures) == 1
        assert "span_recall" in failures[0]
        assert "not checked" in capsys.readouterr().out

    def test_machine_bound_throughput_is_not_gated(self, artifact_dir,
                                                   tmp_path):
        baseline = self._baseline(artifact_dir, tmp_path)
        record = json.loads((artifact_dir / "bench_flat.json").read_text())
        record["baseline_bins_per_sec"] = 1.0          # collapses; not gated
        _write(artifact_dir / "bench_flat.json", record)
        assert bench_trajectory.check(baseline, artifact_dir, 0.1) == []

    def test_bench_documented_recall_floor_wins_when_looser(self, artifact_dir,
                                                            tmp_path):
        """A recall above the bench's own documented floor passes even when
        it sits below baseline - recall_tolerance (the bench owns its
        tolerance; the trajectory is only a drift tripwire)."""
        baseline = self._baseline(artifact_dir, tmp_path)
        record = json.loads((artifact_dir / "bench_flat.json").read_text())
        record["parity"]["span_recall"] = 0.86        # baseline 0.95
        record["gate"]["span_recall_floor"] = 0.85
        _write(artifact_dir / "bench_flat.json", record)
        assert bench_trajectory.check(baseline, artifact_dir, 0.5,
                                      recall_tolerance=0.05) == []
        record["parity"]["span_recall"] = 0.80        # below even the floor
        _write(artifact_dir / "bench_flat.json", record)
        failures = bench_trajectory.check(baseline, artifact_dir, 0.5,
                                          recall_tolerance=0.05)
        assert len(failures) == 1 and "span_recall" in failures[0]

    def test_parity_recall_regression_fails(self, artifact_dir, tmp_path):
        baseline = self._baseline(artifact_dir, tmp_path)
        record = json.loads((artifact_dir / "bench_sectioned.json").read_text())
        record["parity_section"]["parity"]["sharded"]["span_recall"] = 0.2
        _write(artifact_dir / "bench_sectioned.json", record)
        failures = bench_trajectory.check(baseline, artifact_dir, 0.1)
        assert len(failures) == 1
        assert "span_recall" in failures[0]

    def test_missing_benchmark_is_skipped_when_allowed(self, artifact_dir,
                                                       tmp_path, capsys):
        baseline = self._baseline(artifact_dir, tmp_path)
        (artifact_dir / "bench_sectioned.json").unlink()
        assert bench_trajectory.check(baseline, artifact_dir, 0.1,
                                      allow_missing=True) == []
        assert "skipped" in capsys.readouterr().out

    def test_missing_benchmark_fails_by_default(self, artifact_dir, tmp_path):
        """A benchmark that crashed before writing JSON must not slip past
        the gate as a silent pass."""
        baseline = self._baseline(artifact_dir, tmp_path)
        (artifact_dir / "bench_sectioned.json").unlink()
        failures = bench_trajectory.check(baseline, artifact_dir, 0.1)
        assert len(failures) == 2          # bench_recal and bench_parity
        assert all("no fresh artifact" in message for message in failures)

    def test_empty_artifact_dir_is_an_error_even_when_allowed(
            self, artifact_dir, tmp_path):
        baseline = self._baseline(artifact_dir, tmp_path)
        for path in artifact_dir.glob("*.json"):
            path.unlink()
        failures = bench_trajectory.check(baseline, artifact_dir, 0.1,
                                          allow_missing=True)
        assert len(failures) == 1
        assert "did not run" in failures[0]

    def test_cli_missing_artifacts_exit_distinctly(self, artifact_dir,
                                                   tmp_path, capsys):
        baseline = self._baseline(artifact_dir, tmp_path)
        (artifact_dir / "bench_sectioned.json").unlink()
        code = bench_trajectory.main(["check",
                                      "--artifacts", str(artifact_dir),
                                      "--baseline", str(baseline)])
        assert code == 2                   # distinct from regressions (1)
        assert "MISSING" in capsys.readouterr().err
        assert bench_trajectory.main(["check",
                                      "--artifacts", str(artifact_dir),
                                      "--baseline", str(baseline),
                                      "--allow-missing"]) == 0

    def test_disappearing_tracked_metric_fails(self, artifact_dir, tmp_path):
        baseline = self._baseline(artifact_dir, tmp_path)
        record = json.loads((artifact_dir / "bench_flat.json").read_text())
        del record["parallel_speedup_vs_baseline"]
        _write(artifact_dir / "bench_flat.json", record)
        failures = bench_trajectory.check(baseline, artifact_dir, 0.5)
        assert any("disappeared" in message for message in failures)

    def test_cli_check_exit_codes(self, artifact_dir, tmp_path, capsys):
        baseline = self._baseline(artifact_dir, tmp_path)
        assert bench_trajectory.main(["check",
                                      "--artifacts", str(artifact_dir),
                                      "--baseline", str(baseline),
                                      "--tolerance", "0.1"]) == 0
        record = json.loads((artifact_dir / "bench_flat.json").read_text())
        record["parallel_speedup_vs_baseline"] = 0.1
        _write(artifact_dir / "bench_flat.json", record)
        assert bench_trajectory.main(["check",
                                      "--artifacts", str(artifact_dir),
                                      "--baseline", str(baseline),
                                      "--tolerance", "0.1"]) == 1
        assert "REGRESSION" in capsys.readouterr().err

    def test_missing_baseline_is_a_no_op(self, artifact_dir, tmp_path):
        assert bench_trajectory.check(tmp_path / "absent.json",
                                      artifact_dir, 0.1) == []


class TestMarkdownSummary:
    def _baseline(self, artifact_dir, tmp_path):
        baseline = tmp_path / "BENCH.json"
        bench_trajectory.consolidate(artifact_dir, baseline)
        return baseline

    def test_summary_table_lists_every_tracked_metric(self, artifact_dir,
                                                      tmp_path):
        baseline = self._baseline(artifact_dir, tmp_path)
        summary = tmp_path / "summary.md"
        code = bench_trajectory.main(["check",
                                      "--artifacts", str(artifact_dir),
                                      "--baseline", str(baseline),
                                      "--summary", str(summary)])
        assert code == 0
        text = summary.read_text()
        assert "| Benchmark | Metric |" in text
        assert "parallel_speedup_vs_baseline" in text
        assert "parity.span_recall" in text
        assert "within tolerance" in text

    def test_summary_marks_regressions(self, artifact_dir, tmp_path):
        baseline = self._baseline(artifact_dir, tmp_path)
        record = json.loads((artifact_dir / "bench_flat.json").read_text())
        record["parallel_speedup_vs_baseline"] = 0.1
        _write(artifact_dir / "bench_flat.json", record)
        summary = tmp_path / "summary.md"
        code = bench_trajectory.main(["check",
                                      "--artifacts", str(artifact_dir),
                                      "--baseline", str(baseline),
                                      "--tolerance", "0.5",
                                      "--summary", str(summary)])
        assert code == 1
        text = summary.read_text()
        assert "REGRESSION" in text
        assert "**Failures:**" in text

    def test_summary_appends_rather_than_overwrites(self, artifact_dir,
                                                    tmp_path):
        baseline = self._baseline(artifact_dir, tmp_path)
        summary = tmp_path / "summary.md"
        summary.write_text("## earlier step output\n")
        bench_trajectory.main(["check", "--artifacts", str(artifact_dir),
                               "--baseline", str(baseline),
                               "--summary", str(summary)])
        text = summary.read_text()
        assert text.startswith("## earlier step output")
        assert "Benchmark trajectory" in text

    def test_disabled_gate_rows_are_marked_not_gated(self, artifact_dir,
                                                     tmp_path):
        baseline = self._baseline(artifact_dir, tmp_path)
        record = json.loads((artifact_dir / "bench_flat.json").read_text())
        record["gate"] = {"min_speedup": 1.5, "enforced": False}
        _write(artifact_dir / "bench_flat.json", record)
        _, _, rows = bench_trajectory.compare(baseline, artifact_dir, 0.5)
        speedup_rows = [r for r in rows if r["kind"] == "speedup"
                        and r["benchmark"] == "bench_flat"]
        assert speedup_rows
        assert all(r["status"] == "not gated (machine)"
                   for r in speedup_rows)
