"""Chaos harness: seeded faults against the full distributed stack.

Three parity invariants under injected failure, all deterministic under
fixed seeds (the CI ``chaos`` job runs exactly this file):

1. **Worker kill** — a shard worker SIGKILLed mid-stream is restarted by
   :class:`~repro.streaming.parallel.WorkerSupervisor` from the last
   good checkpoint, and the supervised run's final event list is
   **identical** to an undisturbed run's.
2. **Checkpoint corruption** — truncating the newest checkpoint
   generation makes ``load_checkpoint(fallback=True)`` quarantine the
   damaged files (never delete), restore the previous verified
   generation, and a suffix replay into the idempotent
   :class:`~repro.service.EventStore` ends with the **byte-identical**
   ``table_digest()`` of an uninterrupted run.
3. **Leaf quarantine** — a silent ingestion leaf is auto-quarantined at
   its watermark deadline, global detection continues over the healthy
   sub-hierarchy (reporting exactly its events), and reintegration
   restores full parity via the exact merge.

When ``CHAOS_ARTIFACT_DIR`` is set (the CI job does), quarantined
checkpoint files are copied there so a failing run uploads the evidence.
"""

import os
import shutil

import pytest

from repro.datasets import DatasetConfig, generate_abilene_dataset
from repro.faults import FailingSink, FaultPlan, corrupt_checkpoint
from repro.service import AlertDispatcher, EventStore
from repro.streaming import (ChunkedSeriesSource, StreamingConfig,
                             StreamingNetworkDetector, WorkerSupervisor,
                             chunk_series, load_checkpoint,
                             parallel_stream_detect, save_checkpoint)
from repro.streaming.checkpoint import QUARANTINE_DIRNAME
from repro.streaming.hierarchy import HierarchicalNetworkDetector
from repro.telemetry import (HealthSnapshot, MetricsRegistry,
                             prometheus_exposition)

CHUNK = 48
SEED = 11


@pytest.fixture(scope="module")
def dataset():
    return generate_abilene_dataset(DatasetConfig(weeks=2.0 / 7.0), seed=SEED)


def _shard_config():
    return StreamingConfig(min_train_bins=128, recalibrate_every_bins=32,
                           parallel_mode="shard")


def _preserve_quarantine(checkpoint_dir):
    """Copy quarantined files into CHAOS_ARTIFACT_DIR when CI asks."""
    artifact_dir = os.environ.get("CHAOS_ARTIFACT_DIR", "")
    quarantine = os.path.join(str(checkpoint_dir), QUARANTINE_DIRNAME)
    if artifact_dir and os.path.isdir(quarantine):
        target = os.path.join(artifact_dir,
                              os.path.basename(str(checkpoint_dir)))
        shutil.copytree(quarantine, target, dirs_exist_ok=True)


class TestWorkerKill:
    def test_supervised_restart_is_event_identical(self, dataset, tmp_path):
        config = _shard_config()
        source = ChunkedSeriesSource(dataset.series, CHUNK)
        baseline = parallel_stream_detect(source, config, n_workers=2)

        plan = FaultPlan().kill_worker(at_chunk=8, worker=0)
        registry = MetricsRegistry()
        supervisor = WorkerSupervisor(
            config, source, n_workers=2,
            checkpoint_dir=tmp_path / "ckpt", checkpoint_every_chunks=3,
            max_restarts=2, backoff_base=0.0, sleep=lambda seconds: None,
            registry=registry, fault_hook=plan.hook)
        report = supervisor.run()

        assert plan.fired == 1
        assert supervisor.restarts == 1
        assert supervisor.degraded is True
        assert report.events == baseline.events
        assert report.n_bins_processed == baseline.n_bins_processed
        # The restart is visible on every telemetry surface.
        assert registry.value("worker_restarts") == 1
        assert registry.value("degraded") == 1.0
        snapshot = HealthSnapshot.from_registry(registry)
        assert snapshot.worker_restarts == 1
        assert snapshot.degraded is True
        exposition = prometheus_exposition(registry)
        assert "repro_worker_restarts_total 1.0" in exposition
        assert "repro_degraded 1.0" in exposition

    def test_restart_budget_exhaustion_escalates(self, dataset, tmp_path):
        config = _shard_config()
        source = ChunkedSeriesSource(dataset.series, CHUNK)
        plan = (FaultPlan()
                .kill_worker(at_chunk=4, worker=0)
                .kill_worker(at_chunk=6, worker=1)
                .kill_worker(at_chunk=8, worker=0))
        supervisor = WorkerSupervisor(
            config, source, n_workers=2,
            checkpoint_dir=tmp_path / "ckpt", checkpoint_every_chunks=3,
            max_restarts=1, backoff_base=0.0, sleep=lambda seconds: None,
            fault_hook=plan.hook)
        with pytest.raises(RuntimeError):
            supervisor.run()
        assert supervisor.restarts == 1
        assert supervisor.registry.value("worker_restarts") == 1


class TestCheckpointCorruption:
    def _run_to_store(self, series, store, detector, first_chunk=0,
                      checkpoint_dir=None, checkpoint_every=None,
                      crash_after=None):
        """Feed chunks into *detector*, persisting closed events to *store*."""
        detector.on_events = lambda events: store.add_events(events)
        start_bin = detector.report.n_bins_processed
        for index, chunk in enumerate(chunk_series(
                series.window(start_bin, series.n_bins), CHUNK,
                start_bin=start_bin), start=first_chunk):
            detector.process_chunk(chunk)
            if (checkpoint_every is not None
                    and (index + 1) % checkpoint_every == 0):
                save_checkpoint(detector, checkpoint_dir)
            if crash_after is not None and index >= crash_after:
                return  # simulated crash: no finish(), no final checkpoint
        detector.finish()

    def test_truncated_generation_falls_back_to_byte_identical_table(
            self, dataset, tmp_path):
        config = StreamingConfig(min_train_bins=128,
                                 recalibrate_every_bins=32)
        reference_store = EventStore()
        self._run_to_store(dataset.series, reference_store,
                           StreamingNetworkDetector(config))
        reference_digest = reference_store.table_digest()

        checkpoint_dir = tmp_path / "ckpt"
        store = EventStore(tmp_path / "events.sqlite")
        self._run_to_store(dataset.series, store,
                           StreamingNetworkDetector(config),
                           checkpoint_dir=checkpoint_dir, checkpoint_every=2,
                           crash_after=7)
        # Torn write: the newest generation's arrays are cut in half.
        corrupt_checkpoint(checkpoint_dir, mode="truncate")

        registry = MetricsRegistry()
        restored = load_checkpoint(checkpoint_dir, fallback=True,
                                   registry=registry)
        _preserve_quarantine(checkpoint_dir)
        assert registry.value("checkpoint_fallbacks") == 1
        assert registry.value("checkpoints_quarantined") >= 1
        # Quarantined, not deleted: the corrupt evidence is preserved.
        quarantine = checkpoint_dir / QUARANTINE_DIRNAME
        assert any(quarantine.iterdir())
        # The restored run replays the suffix; the idempotent store absorbs
        # re-emitted events, ending byte-identical to the clean run.
        resume_chunk = restored.report.n_chunks_processed
        self._run_to_store(dataset.series, store, restored,
                           first_chunk=resume_chunk)
        assert store.table_digest() == reference_digest
        snapshot = HealthSnapshot.from_registry(registry)
        assert snapshot.checkpoint_fallbacks == 1
        assert snapshot.checkpoints_quarantined >= 1
        store.close()
        reference_store.close()

    def test_bitflip_damage_is_seed_deterministic(self, dataset, tmp_path):
        config = StreamingConfig(min_train_bins=128,
                                 recalibrate_every_bins=32)
        damaged = []
        for attempt in ("a", "b"):
            directory = tmp_path / attempt
            detector = StreamingNetworkDetector(config)
            for chunk in chunk_series(dataset.series.window(0, 4 * CHUNK),
                                      CHUNK):
                detector.process_chunk(chunk)
            save_checkpoint(detector, directory)
            (victim,) = corrupt_checkpoint(directory, mode="bitflip",
                                           seed=1234)
            with open(victim, "rb") as handle:
                damaged.append(handle.read())
        assert damaged[0] == damaged[1]


class TestLeafQuarantine:
    def test_silent_leaf_reports_healthy_subhierarchy_events(self, dataset):
        config = StreamingConfig(min_train_bins=128,
                                 recalibrate_every_bins=32, telemetry=True)
        chunks = list(chunk_series(dataset.series, CHUNK))
        healthy = [c for i, c in enumerate(chunks) if i % 2 == 0]
        # Flat reference over exactly the healthy pop's chunks.
        flat = StreamingNetworkDetector(
            StreamingConfig(min_train_bins=128, recalibrate_every_bins=32))
        for chunk in healthy:
            flat.process_chunk(chunk)
        flat_report = flat.finish()

        hierarchy = HierarchicalNetworkDetector(
            config, n_pops=2, leaf_deadline_bins=2 * CHUNK)
        for chunk in healthy:
            hierarchy.process_chunk(chunk, pop=0)  # pop 1 stays silent
        report = hierarchy.finish()

        assert hierarchy.quarantined_pops == frozenset({1})
        assert hierarchy.coverage == 0.5
        assert report.events == flat_report.events
        registry = hierarchy.telemetry.registry
        assert registry.value("leaf_quarantines") == 1
        assert registry.value("quarantined_leaves") == 1.0
        assert registry.value("hierarchy_coverage") == 0.5
        snapshot = HealthSnapshot.from_registry(registry)
        assert snapshot.quarantined_leaves == 1
        assert snapshot.coverage == 0.5
        assert ("repro_hierarchy_coverage 0.5"
                in prometheus_exposition(registry))

    def test_reintegration_restores_full_parity(self, dataset):
        config = StreamingConfig(min_train_bins=128,
                                 recalibrate_every_bins=32)
        chunks = list(chunk_series(dataset.series, CHUNK))
        reference = HierarchicalNetworkDetector(config, n_pops=2)
        for chunk in chunks:
            reference.process_chunk(chunk)
        reference_report = reference.finish()

        disturbed = HierarchicalNetworkDetector(config, n_pops=2)
        for index, chunk in enumerate(chunks):
            if index == 1:
                disturbed.quarantine_leaf(1)
                assert disturbed.coverage == 0.5
            # Round-robin routing sends chunk 1 to pop 1, whose arrival
            # auto-reintegrates the quarantined leaf via the exact merge.
            disturbed.process_chunk(chunk)
        report = disturbed.finish()

        assert disturbed.quarantined_pops == frozenset()
        assert disturbed.coverage == 1.0
        assert report.events == reference_report.events


class TestAlertChannelDown:
    def test_failing_sink_dead_letters_but_run_completes(self, dataset,
                                                         tmp_path):
        config = StreamingConfig(min_train_bins=128,
                                 recalibrate_every_bins=32)
        sink = FailingSink()
        registry = MetricsRegistry()
        dispatcher = AlertDispatcher(
            [sink], registry=registry, max_attempts=2,
            sleep=lambda seconds: None,
            dead_letter_path=str(tmp_path / "dead.jsonl"))
        store = EventStore()
        detector = StreamingNetworkDetector(config)
        detector.on_events = lambda events: dispatcher.dispatch_many(
            store.add_events(events))
        for chunk in chunk_series(dataset.series, CHUNK):
            detector.process_chunk(chunk)
        report = detector.finish()

        assert report.n_events > 0
        assert store.count() == report.n_events
        assert registry.value("alerts_dead_lettered",
                              {"sink": "failing"}) == report.n_events
        assert (tmp_path / "dead.jsonl").exists()
        store.close()
