"""The unified ChunkSource protocol and its adapters.

One feed shape for every driver: protocol conformance across all source
implementations, the ``as_chunk_source`` adapter, suffix-replay resume
semantics, the deprecation shims for the three legacy feed shapes, and
the DetectionService auto-resume that the protocol makes possible.
"""

import numpy as np
import pytest

from repro.datasets.streaming import SyntheticChunkSource, synthetic_chunk_stream
from repro.datasets.synthetic import DatasetConfig
from repro.service import DetectionService
from repro.service.store import EventStore
from repro.streaming import (
    ChunkSource,
    ChunkedSeriesSource,
    StreamingConfig,
    stream_detect,
)
from repro.streaming.parallel import WorkerSupervisor
from repro.streaming.sources import (
    AsyncChunkSource,
    FactoryChunkSource,
    IterableChunkSource,
    as_chunk_source,
)

CHUNK = 32
CONFIG = StreamingConfig(min_train_bins=96, recalibrate_every_bins=48)


def _chunks_equal(a, b):
    if a.start_bin != b.start_bin or a.traffic_types != b.traffic_types:
        return False
    return all(np.array_equal(a.matrix(t), b.matrix(t))
               for t in a.traffic_types)


class TestProtocol:
    def test_every_source_implementation_conforms(self, clean_series,
                                                  abilene, tmp_path):
        from repro.ingest import FlowCsvSource, IngestConfig, export_flow_csv

        path = tmp_path / "empty.csv"
        export_flow_csv([], path)
        sources = [
            ChunkedSeriesSource(clean_series, CHUNK),
            IterableChunkSource([]),
            FactoryChunkSource(lambda start_bin: iter([])),
            AsyncChunkSource(maxsize=2),
            SyntheticChunkSource(chunk_size=CHUNK, max_blocks=1),
            FlowCsvSource(str(path), network=abilene,
                          config=IngestConfig(chunk_size=CHUNK)),
        ]
        for source in sources:
            assert isinstance(source, ChunkSource), type(source).__name__

    def test_non_sources_do_not_conform(self):
        assert not isinstance(42, ChunkSource)
        assert not isinstance([], ChunkSource)  # no resume()

    def test_as_chunk_source_passes_protocol_objects_through(
            self, clean_series):
        source = ChunkedSeriesSource(clean_series, CHUNK)
        assert as_chunk_source(source) is source

    def test_as_chunk_source_wraps_plain_iterables_silently(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            wrapped = as_chunk_source([])
        assert isinstance(wrapped, IterableChunkSource)

    def test_as_chunk_source_warns_on_legacy_factory(self):
        with pytest.deprecated_call():
            wrapped = as_chunk_source(lambda start_bin: iter([]))
        assert isinstance(wrapped, FactoryChunkSource)

    def test_as_chunk_source_rejects_everything_else(self):
        with pytest.raises(TypeError, match="must be a ChunkSource"):
            as_chunk_source(42)
        with pytest.raises(ValueError, match="must not be None"):
            as_chunk_source(None)


class TestResume:
    def test_series_source_resume_reproduces_the_suffix(self, clean_series):
        full = list(ChunkedSeriesSource(clean_series, CHUNK))
        resumed = list(ChunkedSeriesSource(clean_series, CHUNK).resume(64))
        assert len(resumed) == len(full) - 2
        for a, b in zip(resumed, full[2:]):
            assert _chunks_equal(a, b)

    def test_synthetic_source_resume_reproduces_the_suffix(self):
        source = SyntheticChunkSource(
            chunk_size=CHUNK, block_config=DatasetConfig(weeks=1.0 / 7.0),
            seed=3, max_blocks=1)
        full = list(source)
        resumed = list(source.resume(96))
        assert [c.start_bin for c in resumed] \
            == [c.start_bin for c in full if c.start_bin >= 96]
        for a, b in zip(resumed, full[3:]):
            assert _chunks_equal(a, b)

    def test_iterable_source_resume_skips_forward_only(self, clean_series):
        chunks = list(ChunkedSeriesSource(clean_series, CHUNK))
        resumed = list(IterableChunkSource(chunks).resume(64))
        assert resumed == chunks[2:]
        # A resume bin off the chunk grid cannot be honoured by skipping.
        with pytest.raises(ValueError, match="cannot resume a plain"):
            list(IterableChunkSource(chunks).resume(40))


class TestDeprecatedShapes:
    def test_stream_detect_chunks_keyword_warns_but_works(self, clean_series):
        source = ChunkedSeriesSource(clean_series, CHUNK)
        with pytest.deprecated_call():
            legacy = stream_detect(chunks=source, config=CONFIG)
        modern = stream_detect(source, config=CONFIG)
        assert legacy.n_bins_processed == modern.n_bins_processed
        assert len(legacy.events) == len(modern.events)

    def test_source_and_chunks_together_is_an_error(self, clean_series):
        source = ChunkedSeriesSource(clean_series, CHUNK)
        with pytest.raises(ValueError, match="not both"):
            stream_detect(source, config=CONFIG, chunks=source)

    def test_series_source_start_bin_keyword_warns(self, clean_series):
        with pytest.deprecated_call():
            ChunkedSeriesSource(clean_series.window(64, 288), CHUNK,
                                start_bin=64)

    def test_synthetic_stream_start_block_warns(self):
        with pytest.deprecated_call():
            synthetic_chunk_stream(chunk_size=CHUNK, max_blocks=2,
                                   start_block=1)

    def test_supervisor_source_factory_keyword_warns(self):
        with pytest.deprecated_call():
            supervisor = WorkerSupervisor(
                CONFIG, source_factory=lambda start_bin: iter([]))
        assert isinstance(supervisor._source, FactoryChunkSource)

    def test_supervisor_requires_exactly_one_source(self):
        with pytest.raises(ValueError, match="source is required"):
            WorkerSupervisor(CONFIG)


class TestServiceAutoResume:
    def test_restarted_service_positions_a_resumable_source(
            self, clean_series, tmp_path):
        source = ChunkedSeriesSource(clean_series, CHUNK)
        chunks = list(source)

        reference = DetectionService(CONFIG)
        reference.run(source)
        expected_digest = reference.store.table_digest()
        reference.close()

        store_path = str(tmp_path / "events.sqlite")
        checkpoint_dir = str(tmp_path / "ckpt")

        first = DetectionService(CONFIG, store=EventStore(store_path),
                                 checkpoint_dir=checkpoint_dir)

        def stopping(feed, after):
            for index, chunk in enumerate(feed, start=1):
                yield chunk
                if index == after:
                    first.request_stop()

        # The stop request lands while chunk 4 is in flight; that chunk is
        # finished, not dropped, before the loop exits.
        result = first.run(stopping(iter(chunks), 3))
        assert result.interrupted
        assert first.resume_bin == 4 * CHUNK
        first.close()

        # The restarted service gets the FULL stream and positions the
        # resumable source itself — callers no longer slice suffixes.
        second = DetectionService(CONFIG, store=EventStore(store_path),
                                  checkpoint_dir=checkpoint_dir)
        assert second.resume_bin == 4 * CHUNK
        second.run(ChunkedSeriesSource(clean_series, CHUNK))
        assert second.store.table_digest() == expected_digest
        second.close()
