"""Unit and integration tests for dominance analysis and the rule-based classifier."""

import numpy as np
import pytest

from repro.anomalies import (
    AlphaInjector,
    AnomalyType,
    DosInjector,
    FlashCrowdInjector,
    GroundTruthLog,
    IngressShiftInjector,
    InjectionContext,
    OutageInjector,
    PointMultipointInjector,
    ScanInjector,
    WormInjector,
)
from repro.classification import (
    DominanceAnalyzer,
    RuleBasedClassifier,
    extract_event_features,
)
from repro.core import detect_network_anomalies
from repro.flows.composition import FlowCompositionModel
from repro.flows.timeseries import TrafficType


@pytest.fixture()
def injected_environment(abilene, clean_series):
    """A copy of the clean series plus the machinery to inject and classify."""
    series = clean_series.copy()
    composition = FlowCompositionModel(abilene, seed=0)
    context = InjectionContext(
        network=abilene,
        series=series,
        composition=composition,
        ground_truth=GroundTruthLog(),
        rng=np.random.default_rng(42),
    )
    return context


def _classify_injected(context, injector, expect_detection=True):
    """Inject one anomaly, run detection and classification, return results."""
    anomaly = injector.inject(context)
    report = detect_network_anomalies(context.series)
    analyzer = DominanceAnalyzer(context.series, context.composition)
    classifier = RuleBasedClassifier()
    matching = [event for event in report.events if event.overlaps_bins(anomaly.bins)]
    if expect_detection:
        assert matching, f"injected {anomaly.anomaly_type} was not detected"
    results = []
    for event in matching:
        features = extract_event_features(event, context.series, analyzer)
        results.append(classifier.classify(features))
    return anomaly, results


class TestDominanceAnalyzer:
    def test_summary_over_clean_cells_has_no_dominant_source(self, abilene, clean_series):
        analyzer = DominanceAnalyzer(clean_series, FlowCompositionModel(abilene, seed=0))
        summary = analyzer.summarize([("LOSA", "NYCM")], [10, 11])
        assert not summary.has_dominant(TrafficType.FLOWS, "src_range")

    def test_threshold_validated(self, abilene, clean_series):
        with pytest.raises(ValueError):
            DominanceAnalyzer(clean_series, FlowCompositionModel(abilene), threshold=1.5)

    def test_event_composition_merges_cells(self, abilene, clean_series):
        analyzer = DominanceAnalyzer(clean_series, FlowCompositionModel(abilene, seed=0))
        merged = analyzer.event_composition([("LOSA", "NYCM"), ("CHIN", "WASH")], [3, 4])
        single = analyzer.cell_composition(("LOSA", "NYCM"), 3)
        assert len(merged.groups) > len(single.groups)


class TestClassifierOnInjectedAnomalies:
    def test_alpha_classified_as_alpha(self, injected_environment):
        injector = AlphaInjector(start_bin=40, duration_bins=2,
                                 od_pair=("LOSA", "NYCM"), magnitude=7.0,
                                 packet_size_bytes=1400.0)
        _anomaly, results = _classify_injected(injected_environment, injector)
        assert AnomalyType.ALPHA in {r.anomaly_type for r in results}

    def test_dos_classified_as_dos(self, injected_environment):
        injector = DosInjector(start_bin=60, duration_bins=2,
                               od_pairs=[("CHIN", "WASH")], magnitude=7.0,
                               target_port=0, packets_per_flow=3.0)
        _anomaly, results = _classify_injected(injected_environment, injector)
        assert AnomalyType.DOS in {r.anomaly_type for r in results}

    def test_ddos_classified_as_ddos(self, injected_environment):
        pairs = [("CHIN", "WASH"), ("LOSA", "WASH"), ("STTL", "WASH")]
        injector = DosInjector(start_bin=80, duration_bins=2, od_pairs=pairs,
                               magnitude=10.0, target_port=113, packets_per_flow=2.0)
        _anomaly, results = _classify_injected(injected_environment, injector)
        assert {AnomalyType.DDOS, AnomalyType.DOS} & {r.anomaly_type for r in results}

    def test_flash_crowd_classified_as_flash(self, injected_environment):
        injector = FlashCrowdInjector(start_bin=100, duration_bins=2,
                                      od_pair=("ATLA", "SNVA"), magnitude=7.0,
                                      service_port=80, packets_per_flow=6.0)
        _anomaly, results = _classify_injected(injected_environment, injector)
        assert AnomalyType.FLASH_CROWD in {r.anomaly_type for r in results}

    def test_scan_classified_as_scan(self, injected_environment):
        injector = ScanInjector(start_bin=120, duration_bins=2,
                                od_pair=("DNVR", "HSTN"), magnitude=6.0,
                                network_scan=True, target_port=139)
        _anomaly, results = _classify_injected(injected_environment, injector)
        assert AnomalyType.SCAN in {r.anomaly_type for r in results}

    def test_worm_classified_as_worm(self, injected_environment):
        pairs = [("CHIN", "ATLA"), ("NYCM", "LOSA"), ("STTL", "HSTN")]
        injector = WormInjector(start_bin=140, duration_bins=2, od_pairs=pairs,
                                magnitude=12.0, worm_port=1433)
        _anomaly, results = _classify_injected(injected_environment, injector)
        assert AnomalyType.WORM in {r.anomaly_type for r in results}

    def test_point_multipoint_classified(self, injected_environment):
        pairs = [("WASH", "LOSA"), ("WASH", "SNVA"), ("WASH", "CHIN")]
        injector = PointMultipointInjector(start_bin=160, duration_bins=2,
                                           od_pairs=pairs, magnitude=9.0,
                                           content_port=119)
        _anomaly, results = _classify_injected(injected_environment, injector)
        assert AnomalyType.POINT_MULTIPOINT in {r.anomaly_type for r in results}

    def test_outage_classified_as_outage(self, injected_environment):
        # 12 bins (one hour): long enough to matter, short enough that PCA
        # on a one-day window does not absorb the outage into the normal
        # subspace (week-long windows tolerate much longer outages).
        injector = OutageInjector(start_bin=180, duration_bins=12, pop="LOSA")
        _anomaly, results = _classify_injected(injected_environment, injector)
        assert AnomalyType.OUTAGE in {r.anomaly_type for r in results}

    def test_ingress_shift_classified(self, injected_environment):
        injector = IngressShiftInjector(start_bin=220, duration_bins=12,
                                        from_pop="LOSA", to_pop="SNVA",
                                        shifted_fraction=0.8, customer="CALREN")
        _anomaly, results = _classify_injected(injected_environment, injector)
        labels = {r.anomaly_type for r in results}
        assert {AnomalyType.INGRESS_SHIFT, AnomalyType.OUTAGE} & labels

    def test_classification_results_carry_rationale(self, injected_environment):
        injector = AlphaInjector(start_bin=40, duration_bins=1,
                                 od_pair=("LOSA", "NYCM"), magnitude=7.0,
                                 packet_size_bytes=1400.0)
        _anomaly, results = _classify_injected(injected_environment, injector)
        assert all(isinstance(r.rationale, str) and r.rationale for r in results)
