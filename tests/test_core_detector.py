"""Unit tests for the subspace detector, identification, and event aggregation."""

import numpy as np
import pytest

from repro.core.detector import SubspaceDetector
from repro.core.events import (
    COMBINATION_LABELS,
    AnomalyEvent,
    Detection,
    aggregate_detections,
    count_by_label,
    fuse_traffic_types,
)
from repro.core.identification import identify_od_flows, spe_contributions
from repro.flows.timeseries import TrafficType


def _synthetic_matrix(n=600, p=30, seed=0, spikes=()):
    """Low-rank diurnal-ish data plus optional (bin, flow, magnitude) spikes."""
    rng = np.random.default_rng(seed)
    time = np.arange(n)
    base = 100.0 + 30.0 * np.sin(2 * np.pi * time / 288.0)
    scale = rng.uniform(0.5, 2.0, size=p)
    data = np.outer(base, scale) + rng.normal(0, 2.0, size=(n, p)) * scale
    data = np.clip(data, 0, None)
    for bin_index, flow, magnitude in spikes:
        data[bin_index, flow] += magnitude
    return data


class TestSubspaceDetector:
    def test_fit_detect_on_clean_data_has_few_detections(self):
        detector = SubspaceDetector(n_normal=4, confidence=0.999)
        result = detector.fit_detect(_synthetic_matrix())
        assert result.detection_rate < 0.02

    def test_detects_injected_spike(self):
        data = _synthetic_matrix(spikes=[(300, 5, 800.0)])
        result = SubspaceDetector().fit_detect(data)
        assert 300 in result.anomalous_bins

    def test_unfitted_detector_raises(self):
        with pytest.raises(RuntimeError):
            SubspaceDetector().detect(np.ones((10, 5)))

    def test_model_property_after_fit(self):
        detector = SubspaceDetector().fit(_synthetic_matrix())
        assert detector.is_fitted
        assert detector.model.n_normal == 4

    def test_detect_on_new_data(self):
        train = _synthetic_matrix(seed=1)
        test = _synthetic_matrix(seed=2, spikes=[(100, 3, 900.0)])
        detector = SubspaceDetector().fit(train)
        result = detector.detect(test)
        assert 100 in result.anomalous_bins

    def test_disable_t2(self):
        data = _synthetic_matrix(spikes=[(300, 5, 800.0)])
        result = SubspaceDetector(use_t2=False).fit_detect(data)
        assert result.t2_bins == []

    def test_higher_confidence_fewer_detections(self):
        data = _synthetic_matrix(seed=3)
        low = SubspaceDetector(confidence=0.95).fit_detect(data)
        high = SubspaceDetector(confidence=0.9999).fit_detect(data)
        assert len(high.detections) <= len(low.detections)

    def test_result_summary_fields(self):
        result = SubspaceDetector().fit_detect(_synthetic_matrix())
        summary = result.summary()
        assert summary["n_bins"] == 600
        assert {"n_detections", "spe_threshold", "t2_threshold"} <= set(summary)

    def test_detection_lookup(self):
        data = _synthetic_matrix(spikes=[(300, 5, 800.0)])
        result = SubspaceDetector().fit_detect(data)
        detection = result.detection_at(300)
        assert detection is not None
        assert detection.spe_triggered or detection.t2_triggered
        assert result.detection_at(1) is None or result.detection_at(1).bin_index == 1

    def test_needs_enough_bins(self):
        with pytest.raises(ValueError):
            SubspaceDetector(n_normal=4).fit(np.ones((4, 10)))

    def test_rank_must_exceed_n_normal(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(50, 3))
        with pytest.raises(ValueError):
            SubspaceDetector(n_normal=4).fit(data)


class TestIdentification:
    def test_spe_identification_finds_spiked_flow(self):
        # Fit on clean data, detect on perturbed data, so the spike cannot be
        # absorbed into the normal subspace and must appear in the residual.
        clean = _synthetic_matrix()
        perturbed = _synthetic_matrix(spikes=[(300, 5, 300.0)])
        detector = SubspaceDetector().fit(clean)
        result = detector.detect(perturbed)
        assert 300 in result.spe_bins
        flows = identify_od_flows(detector.model, perturbed, 300, "spe",
                                  result.spe_threshold)
        assert flows[0] == 5

    def test_spe_identification_multiple_flows(self):
        clean = _synthetic_matrix()
        perturbed = _synthetic_matrix(spikes=[(300, 5, 280.0), (300, 11, 260.0)])
        detector = SubspaceDetector().fit(clean)
        result = detector.detect(perturbed)
        flows = identify_od_flows(detector.model, perturbed, 300, "spe",
                                  result.spe_threshold)
        assert {5, 11} <= set(flows[:4])

    def test_identified_set_brings_statistic_under_threshold(self):
        data = _synthetic_matrix(spikes=[(300, 5, 800.0)])
        detector = SubspaceDetector().fit(data)
        result = detector.detect()
        flows = identify_od_flows(detector.model, data, 300, "spe",
                                  result.spe_threshold)
        contributions = spe_contributions(detector.model, data, 300)
        remaining = contributions.sum() - contributions[flows].sum()
        assert remaining <= result.spe_threshold

    def test_t2_identification_returns_nonempty(self):
        # A spike shared by many flows is captured in the normal subspace.
        data = _synthetic_matrix()
        data[200, :] *= 1.8
        detector = SubspaceDetector().fit(data)
        result = detector.detect()
        flows = identify_od_flows(detector.model, data, 200, "t2",
                                  result.t2_threshold, max_flows=10)
        assert len(flows) >= 1
        assert all(0 <= f < data.shape[1] for f in flows)

    def test_max_flows_cap(self):
        data = _synthetic_matrix(spikes=[(300, f, 500.0) for f in range(10)])
        detector = SubspaceDetector().fit(data)
        result = detector.detect()
        flows = identify_od_flows(detector.model, data, 300, "spe",
                                  result.spe_threshold, max_flows=3)
        assert len(flows) <= 3

    def test_invalid_statistic_rejected(self):
        data = _synthetic_matrix()
        detector = SubspaceDetector().fit(data)
        with pytest.raises(ValueError):
            identify_od_flows(detector.model, data, 0, "bogus", 1.0)


class TestEventAggregation:
    def _detection(self, traffic_type, bin_index, flows=(1,)):
        return Detection(traffic_type=traffic_type, bin_index=bin_index,
                         od_flows=tuple(flows))

    def test_empty_input(self):
        assert aggregate_detections([]) == []

    def test_single_type_single_bin(self):
        events = aggregate_detections([self._detection(TrafficType.BYTES, 10)])
        assert len(events) == 1
        assert events[0].traffic_label == "B"
        assert events[0].duration_bins == 1

    def test_same_bin_two_types_becomes_bp(self):
        events = aggregate_detections([
            self._detection(TrafficType.BYTES, 10, (1,)),
            self._detection(TrafficType.PACKETS, 10, (2,)),
        ])
        assert len(events) == 1
        assert events[0].traffic_label == "BP"
        assert events[0].od_flows == frozenset({1, 2})

    def test_all_three_types_becomes_bfp(self):
        events = aggregate_detections([
            self._detection(TrafficType.BYTES, 4),
            self._detection(TrafficType.FLOWS, 4),
            self._detection(TrafficType.PACKETS, 4),
        ])
        assert events[0].traffic_label == "BFP"

    def test_consecutive_bins_same_label_merged(self):
        events = aggregate_detections([
            self._detection(TrafficType.FLOWS, 7, (3,)),
            self._detection(TrafficType.FLOWS, 8, (4,)),
            self._detection(TrafficType.FLOWS, 9, (3,)),
        ])
        assert len(events) == 1
        assert events[0].start_bin == 7 and events[0].end_bin == 9
        assert events[0].od_flows == frozenset({3, 4})
        assert events[0].duration_minutes() == 15.0

    def test_gap_splits_events(self):
        events = aggregate_detections([
            self._detection(TrafficType.FLOWS, 7),
            self._detection(TrafficType.FLOWS, 9),
        ])
        assert len(events) == 2

    def test_label_change_splits_events(self):
        events = aggregate_detections([
            self._detection(TrafficType.FLOWS, 7),
            self._detection(TrafficType.PACKETS, 8),
        ])
        assert len(events) == 2
        assert {e.traffic_label for e in events} == {"F", "P"}

    def test_count_by_label_covers_all_labels(self):
        events = aggregate_detections([
            self._detection(TrafficType.BYTES, 1),
            self._detection(TrafficType.BYTES, 5),
            self._detection(TrafficType.FLOWS, 5),
        ])
        counts = count_by_label(events)
        assert set(counts) == set(COMBINATION_LABELS)
        assert counts["B"] == 1
        assert counts["BF"] == 1

    def test_fuse_traffic_types_validates_keys(self):
        with pytest.raises(ValueError):
            fuse_traffic_types({
                TrafficType.BYTES: [self._detection(TrafficType.FLOWS, 1)],
            })

    def test_event_helpers(self):
        event = AnomalyEvent(traffic_label="FP", start_bin=10, end_bin=12,
                             od_flows=frozenset({1, 2}), bins=(10, 11, 12))
        assert event.n_od_flows == 2
        assert event.involves_traffic_type(TrafficType.FLOWS)
        assert not event.involves_traffic_type(TrafficType.BYTES)
        assert event.overlaps_bins([12, 40])
        assert not event.overlaps_bins([13])
        assert set(event.traffic_types) == {TrafficType.FLOWS, TrafficType.PACKETS}
