"""Unit tests for the eigenflow decomposition and the subspace model."""

import numpy as np
import pytest

from repro.core.pca import EigenflowDecomposition
from repro.core.subspace import SubspaceModel, T2Scaling
from repro.utils.stats import t_squared_threshold


def _low_rank_data(n=500, p=40, rank=3, noise=0.01, seed=0):
    """Data with a known low-rank structure plus small noise."""
    rng = np.random.default_rng(seed)
    temporal = rng.normal(size=(n, rank))
    spatial = rng.normal(size=(rank, p))
    return temporal @ spatial + noise * rng.normal(size=(n, p))


class TestEigenflowDecomposition:
    def test_eigenvalues_descending_and_nonnegative(self):
        decomposition = EigenflowDecomposition(_low_rank_data())
        eigenvalues = decomposition.eigenvalues
        assert np.all(np.diff(eigenvalues) <= 1e-9)
        assert np.all(eigenvalues >= -1e-12)

    def test_eigenflows_are_orthonormal(self):
        decomposition = EigenflowDecomposition(_low_rank_data())
        u = decomposition.eigenflows(5)
        assert np.allclose(u.T @ u, np.eye(5), atol=1e-10)

    def test_principal_axes_are_orthonormal(self):
        decomposition = EigenflowDecomposition(_low_rank_data())
        v = decomposition.principal_axes(5)
        assert np.allclose(v.T @ v, np.eye(5), atol=1e-10)

    def test_low_rank_structure_recovered(self):
        decomposition = EigenflowDecomposition(_low_rank_data(rank=3, noise=1e-6))
        ratios = decomposition.explained_variance_ratio()
        assert ratios[:3].sum() > 0.999
        assert ratios[3] < 1e-6

    def test_full_reconstruction_recovers_data(self):
        data = _low_rank_data()
        decomposition = EigenflowDecomposition(data)
        reconstructed = decomposition.reconstruct(decomposition.rank)
        assert np.allclose(reconstructed, data, atol=1e-8)

    def test_partial_reconstruction_error_decreases_with_k(self):
        data = _low_rank_data(rank=5, noise=0.5)
        decomposition = EigenflowDecomposition(data)
        errors = [np.linalg.norm(data - decomposition.reconstruct(k))
                  for k in (1, 3, 5, 10)]
        assert errors == sorted(errors, reverse=True)

    def test_column_means_subtracted(self):
        data = _low_rank_data() + 100.0
        decomposition = EigenflowDecomposition(data, center=True)
        assert np.allclose(decomposition.column_means, data.mean(axis=0))

    def test_uncentered_mode(self):
        data = np.abs(_low_rank_data()) + 10.0
        decomposition = EigenflowDecomposition(data, center=False)
        assert np.allclose(decomposition.column_means, 0.0)

    def test_scores_of_training_data(self):
        data = _low_rank_data()
        decomposition = EigenflowDecomposition(data)
        scores = decomposition.scores()
        external = decomposition.scores(data)
        assert np.allclose(scores, external, atol=1e-8)

    def test_scores_shape_validation(self):
        decomposition = EigenflowDecomposition(_low_rank_data(p=40))
        with pytest.raises(ValueError):
            decomposition.scores(np.ones((10, 39)))

    def test_eigenvalue_relation_to_singular_values(self):
        data = _low_rank_data(n=200)
        decomposition = EigenflowDecomposition(data)
        expected = decomposition.singular_values**2 / (200 - 1)
        assert np.allclose(decomposition.eigenvalues, expected)

    def test_needs_two_samples(self):
        with pytest.raises(ValueError):
            EigenflowDecomposition(np.ones((1, 5)))


class TestSubspaceModel:
    def _model(self, data, k=4, scaling=T2Scaling.HOTELLING):
        return SubspaceModel(EigenflowDecomposition(data), n_normal=k,
                             t2_scaling=scaling)

    def test_split_reconstructs_centered_data(self):
        data = _low_rank_data()
        model = self._model(data)
        modeled, residual = model.split(data)
        centered = data - data.mean(axis=0)
        assert np.allclose(modeled + residual, centered, atol=1e-8)

    def test_modeled_and_residual_orthogonal(self):
        data = _low_rank_data()
        model = self._model(data)
        modeled, residual = model.split(data)
        assert abs(np.sum(modeled * residual)) < 1e-6 * np.sum(modeled**2)

    def test_spe_small_for_low_rank_data(self):
        data = _low_rank_data(rank=3, noise=1e-6)
        model = self._model(data, k=3)
        assert model.spe(data).max() < 1e-6

    def test_spe_detects_residual_perturbation(self):
        data = _low_rank_data(rank=3, noise=0.01)
        model = self._model(data, k=4)
        threshold = model.spe_threshold(0.999)
        perturbed = data.copy()
        perturbed[100, 7] += 10.0   # large single-flow deviation
        spe = model.spe(perturbed)
        assert spe[100] > threshold
        assert np.median(spe) < threshold

    def test_t2_mean_close_to_k(self):
        """For Gaussian data, Hotelling T² with k components has mean ≈ k."""
        rng = np.random.default_rng(1)
        data = rng.normal(size=(3000, 30))
        model = self._model(data, k=4)
        assert model.t2().mean() == pytest.approx(4.0, rel=0.1)

    def test_t2_threshold_matches_formula(self):
        data = _low_rank_data(n=800)
        model = self._model(data, k=4)
        assert model.t2_threshold(0.999) == pytest.approx(
            t_squared_threshold(4, 800, 0.999))

    def test_raw_scaling_flags_same_bins(self):
        data = _low_rank_data(rank=3, noise=0.05, n=400)
        hotelling = self._model(data, k=4, scaling=T2Scaling.HOTELLING)
        raw = self._model(data, k=4, scaling=T2Scaling.RAW_EIGENFLOW)
        flags_hotelling = hotelling.t2(data) > hotelling.t2_threshold()
        flags_raw = raw.t2(data) > raw.t2_threshold()
        assert np.array_equal(flags_hotelling, flags_raw)

    def test_state_magnitude_is_uncentered(self):
        data = np.abs(_low_rank_data()) + 50.0
        model = self._model(data)
        assert np.allclose(model.state_magnitude(data), np.sum(data**2, axis=1))

    def test_n_normal_bounds(self):
        data = _low_rank_data(n=50, p=10)
        with pytest.raises(ValueError):
            SubspaceModel(EigenflowDecomposition(data), n_normal=10)

    def test_residual_and_score_vectors(self):
        data = _low_rank_data()
        model = self._model(data)
        residual = model.residual_vector(data, 5)
        scores = model.score_vector(data, 5)
        assert residual.shape == (data.shape[1],)
        assert scores.shape == (4,)
