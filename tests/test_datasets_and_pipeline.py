"""Tests for dataset generation and the end-to-end diagnosis pipeline."""

import numpy as np
import pytest

from repro.core import detect_network_anomalies
from repro.datasets import (DatasetConfig, generate_abilene_dataset,
                            generate_drifting_dataset, small_scenario)
from repro.evaluation import detection_metrics, match_events
from repro.flows.timeseries import TrafficType


class TestDatasetConfig:
    def test_n_bins(self):
        assert DatasetConfig(weeks=1).n_bins == 2016
        assert DatasetConfig(weeks=0.5).n_bins == 1008

    def test_invalid_weeks(self):
        with pytest.raises(ValueError):
            DatasetConfig(weeks=0)


class TestGenerateAbileneDataset:
    def test_dataset_shape_and_ground_truth(self, small_dataset):
        assert small_dataset.network.n_pops == 11
        assert small_dataset.n_od_pairs == 121
        assert small_dataset.n_bins == 576
        assert len(small_dataset.ground_truth) > 0

    def test_clean_series_differs_from_injected(self, small_dataset):
        assert not small_dataset.series.allclose(small_dataset.clean_series)

    def test_clean_dataset_has_no_anomalies(self, clean_dataset):
        assert len(clean_dataset.ground_truth) == 0
        assert clean_dataset.series.allclose(clean_dataset.clean_series)

    def test_reproducible_for_same_seed(self):
        config = DatasetConfig(weeks=1.0 / 7.0)
        a = generate_abilene_dataset(config, seed=99)
        b = generate_abilene_dataset(config, seed=99)
        assert a.series.allclose(b.series)
        assert len(a.ground_truth) == len(b.ground_truth)

    def test_summary_fields(self, small_dataset):
        summary = small_dataset.summary()
        assert summary["n_od_pairs"] == 121
        assert summary["n_injected_anomalies"] == len(small_dataset.ground_truth)
        assert "traffic" in summary

    def test_week_window(self):
        dataset = generate_abilene_dataset(DatasetConfig(weeks=1.0 / 7.0, schedule=None),
                                           seed=1)
        with pytest.raises(ValueError):
            dataset.week_window(1)
        window = dataset.week_window(0)
        assert window.n_bins == dataset.n_bins

    def test_explicit_injectors_override_schedule(self, abilene):
        from repro.anomalies import AlphaInjector
        config = DatasetConfig(weeks=1.0 / 7.0)
        injector = AlphaInjector(start_bin=50, duration_bins=1,
                                 od_pair=("LOSA", "NYCM"), magnitude=6.0)
        dataset = generate_abilene_dataset(config, seed=2, injectors=[injector])
        assert len(dataset.ground_truth) == 1
        assert dataset.ground_truth.anomalies[0].start_bin == 50


class TestSmallScenario:
    def test_small_scenario_dimensions(self):
        dataset = small_scenario(n_pops=4, n_days=1.0, seed=0)
        assert dataset.network.n_pops == 4
        assert dataset.n_od_pairs == 16
        assert dataset.n_bins == 288

    def test_small_scenario_without_anomalies(self):
        dataset = small_scenario(n_pops=4, n_days=1.0, seed=0, with_anomalies=False)
        assert len(dataset.ground_truth) == 0


class TestEndToEndDiagnosis:
    def test_pipeline_detects_most_injected_anomalies(self, small_dataset):
        report = detect_network_anomalies(small_dataset.series)
        match = match_events(report.events, small_dataset.ground_truth,
                             series=small_dataset.series)
        metrics = detection_metrics(match)
        assert metrics.detection_rate > 0.6
        assert metrics.n_events > 0

    def test_pipeline_low_false_alarm_rate_on_clean_data(self, clean_dataset):
        report = detect_network_anomalies(clean_dataset.series)
        # 99.9% confidence over 576 bins and three traffic types: expect at
        # most a small handful of false events.
        assert report.n_events <= 15
        for result in report.results.values():
            assert result.detection_rate < 0.02

    def test_report_structure(self, small_dataset):
        report = detect_network_anomalies(small_dataset.series)
        assert set(report.results) == set(TrafficType.all())
        assert set(report.detections) == set(TrafficType.all())
        for traffic_type, detections in report.detections.items():
            for detection in detections:
                assert detection.traffic_type == traffic_type
                assert len(detection.od_flows) >= 1
        counts = report.label_counts()
        assert sum(counts.values()) == report.n_events

    def test_report_od_pair_translation(self, small_dataset):
        report = detect_network_anomalies(small_dataset.series)
        if report.events:
            event = report.events[0]
            pair = report.od_pair_of(next(iter(event.od_flows)))
            assert pair in small_dataset.series.od_pairs

    def test_subset_of_traffic_types(self, small_dataset):
        report = detect_network_anomalies(small_dataset.series,
                                          traffic_types=[TrafficType.BYTES])
        assert list(report.results) == [TrafficType.BYTES]
        assert all(event.traffic_label == "B" for event in report.events)

    def test_events_within_series_range(self, small_dataset):
        report = detect_network_anomalies(small_dataset.series)
        for event in report.events:
            assert 0 <= event.start_bin <= event.end_bin < small_dataset.n_bins


class TestGenerateDriftingDataset:
    def test_same_shape_and_ground_truth_machinery(self):
        config = DatasetConfig(weeks=1.0 / 7.0)
        drifting = generate_drifting_dataset(config, seed=5)
        stationary = generate_abilene_dataset(config, seed=5)
        assert drifting.n_bins == stationary.n_bins
        assert drifting.n_od_pairs == stationary.n_od_pairs
        assert len(drifting.ground_truth) == len(stationary.ground_truth)

    def test_drift_profile_lands_in_the_generator_config(self):
        from repro.traffic import DriftProfile

        drift = DriftProfile(level_drift_per_day=0.3)
        dataset = generate_drifting_dataset(DatasetConfig(weeks=1.0 / 7.0),
                                            drift=drift, seed=5)
        assert dataset.config.generator.drift == drift
        # The drifting background really differs from the stationary one.
        stationary = generate_abilene_dataset(DatasetConfig(weeks=1.0 / 7.0),
                                              seed=5)
        assert not np.allclose(
            dataset.clean_series.matrix(TrafficType.BYTES),
            stationary.clean_series.matrix(TrafficType.BYTES))
