"""Unit tests for ground-truth matching, metrics, and reporting."""

import numpy as np
import pytest

from repro.anomalies.types import AnomalyType, GroundTruthAnomaly, GroundTruthLog
from repro.classification.classifier import ClassificationResult
from repro.core.events import AnomalyEvent
from repro.evaluation import (
    detection_metrics,
    format_histogram,
    format_table,
    match_events,
)
from repro.evaluation.metrics import classification_accuracy, classification_confusion
from repro.evaluation.reporting import format_series_summary
from repro.flows.timeseries import TrafficMatrixSeries, TrafficType
from repro.utils.timebins import TimeBinning


def _series(pairs=(("A", "B"), ("B", "A"), ("A", "C")), n_bins=50):
    binning = TimeBinning(n_bins=n_bins)
    matrices = {TrafficType.BYTES: np.ones((n_bins, len(pairs)))}
    return TrafficMatrixSeries(list(pairs), binning, matrices)


def _event(start, end, flows=(0,), label="B"):
    return AnomalyEvent(traffic_label=label, start_bin=start, end_bin=end,
                        od_flows=frozenset(flows), bins=tuple(range(start, end + 1)))


def _truth(anomaly_id, start, end, pairs=(("A", "B"),),
           anomaly_type=AnomalyType.ALPHA):
    return GroundTruthAnomaly(
        anomaly_id=anomaly_id, anomaly_type=anomaly_type, start_bin=start, end_bin=end,
        od_pairs=tuple(pairs), expected_traffic_types=frozenset({TrafficType.BYTES}))


class TestMatching:
    def test_overlapping_event_matches(self):
        series = _series()
        log = GroundTruthLog([_truth(0, 10, 12)])
        report = match_events([_event(11, 11)], log, series=series)
        assert report.detection_rate == 1.0
        assert report.false_alarm_rate == 0.0
        assert report.matches[0].overlap_bins >= 1

    def test_od_overlap_required(self):
        series = _series()
        log = GroundTruthLog([_truth(0, 10, 12, pairs=(("B", "A"),))])
        # event involves OD flow 0 = ("A", "B") which is not the anomaly's pair
        report = match_events([_event(11, 11, flows=(0,))], log, series=series)
        assert report.detection_rate == 0.0
        relaxed = match_events([_event(11, 11, flows=(0,))], log, series=series,
                               require_od_overlap=False)
        assert relaxed.detection_rate == 1.0

    def test_bin_tolerance(self):
        series = _series()
        log = GroundTruthLog([_truth(0, 10, 10)])
        exact = match_events([_event(12, 12)], log, series=series, bin_tolerance=0)
        tolerant = match_events([_event(12, 12)], log, series=series, bin_tolerance=2)
        assert exact.detection_rate == 0.0
        assert tolerant.detection_rate == 1.0

    def test_unmatched_events_are_false_alarms(self):
        series = _series()
        log = GroundTruthLog([_truth(0, 10, 12)])
        report = match_events([_event(11, 11), _event(40, 40)], log, series=series)
        assert report.unmatched_events() == [1]
        assert report.false_alarm_rate == pytest.approx(0.5)

    def test_missed_anomalies(self):
        series = _series()
        log = GroundTruthLog([_truth(0, 10, 12), _truth(1, 30, 31)])
        report = match_events([_event(11, 11)], log, series=series)
        missed = report.missed_anomalies()
        assert [a.anomaly_id for a in missed] == [1]

    def test_per_type_detection_rate(self):
        series = _series()
        log = GroundTruthLog([
            _truth(0, 10, 12, anomaly_type=AnomalyType.ALPHA),
            _truth(1, 30, 31, anomaly_type=AnomalyType.SCAN),
        ])
        report = match_events([_event(11, 11)], log, series=series)
        rates = report.detection_rate_by_type()
        assert rates[AnomalyType.ALPHA] == 1.0
        assert rates[AnomalyType.SCAN] == 0.0

    def test_requires_series_when_od_overlap(self):
        log = GroundTruthLog([_truth(0, 10, 12)])
        with pytest.raises(ValueError):
            match_events([_event(11, 11)], log, series=None)


class TestMetrics:
    def test_detection_metrics_fields(self):
        series = _series()
        log = GroundTruthLog([_truth(0, 10, 12), _truth(1, 30, 31)])
        report = match_events([_event(11, 11), _event(45, 45)], log, series=series)
        metrics = detection_metrics(report)
        assert metrics.n_ground_truth == 2
        assert metrics.n_detected == 1
        assert metrics.n_missed == 1
        assert metrics.n_false_alarms == 1
        assert metrics.detection_rate == pytest.approx(0.5)
        assert metrics.as_dict()["n_events"] == 2

    def test_confusion_and_accuracy(self):
        series = _series()
        log = GroundTruthLog([
            _truth(0, 10, 12, anomaly_type=AnomalyType.ALPHA),
            _truth(1, 30, 31, anomaly_type=AnomalyType.DDOS),
        ])
        events = [_event(11, 11), _event(30, 30), _event(45, 45)]
        report = match_events(events, log, series=series)

        def _classification(event, anomaly_type):
            return ClassificationResult(features=None, anomaly_type=anomaly_type,
                                        rationale="test")

        classifications = [
            _classification(events[0], AnomalyType.ALPHA),
            _classification(events[1], AnomalyType.DOS),   # DDOS collapses to DOS
            _classification(events[2], AnomalyType.FALSE_ALARM),
        ]
        confusion = classification_confusion(classifications, report)
        assert confusion[(AnomalyType.ALPHA, AnomalyType.ALPHA)] == 1
        assert confusion[(AnomalyType.DOS, AnomalyType.DOS)] == 1
        assert confusion[(AnomalyType.FALSE_ALARM, AnomalyType.FALSE_ALARM)] == 1
        assert classification_accuracy(confusion) == 1.0

    def test_confusion_requires_one_classification_per_event(self):
        series = _series()
        log = GroundTruthLog([_truth(0, 10, 12)])
        report = match_events([_event(11, 11)], log, series=series)
        with pytest.raises(ValueError):
            classification_confusion([], report)


class TestReporting:
    def test_format_table_alignment_and_content(self):
        text = format_table(["name", "count"], [["alpha", 10], ["dos", 2]],
                            title="events")
        lines = text.splitlines()
        assert lines[0] == "events"
        assert "alpha" in text and "10" in text
        assert len(lines) == 5  # title + header + separator + 2 rows

    def test_format_table_validates_row_width(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only one"]])

    def test_format_table_float_formatting(self):
        text = format_table(["x"], [[0.123456]])
        assert "0.123" in text

    def test_format_histogram_counts(self):
        text = format_histogram([1, 1, 2, 5, 9], bin_edges=[0, 2, 4, 10],
                                title="h")
        lines = text.splitlines()
        assert lines[0] == "h"
        # bins [0,2), [2,4), [4,10) hold 2, 1, 2 observations respectively
        assert "    2 " in lines[1] and "    1 " in lines[2] and "    2 " in lines[3]

    def test_format_histogram_requires_edges(self):
        with pytest.raises(ValueError):
            format_histogram([1.0], bin_edges=[1.0])

    def test_format_series_summary(self):
        text = format_series_summary("spe", np.array([1.0, 2.0, 50.0]), threshold=10.0)
        assert "bins_above=1" in text
        assert "median=2" in text
