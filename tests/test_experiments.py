"""Integration tests for the experiment runners (one per paper artifact).

These run on the small two-day session dataset so they stay fast; the full
paper-scale runs live in ``benchmarks/``.
"""

import pytest

from repro.anomalies.types import AnomalyType
from repro.evaluation.experiments import (
    run_ablation_k,
    run_ablation_t2,
    run_baseline_comparison,
    run_figure1,
    run_figure2,
    run_resolution_experiment,
    run_table1,
    run_table2,
    run_table3,
)
from repro.flows.timeseries import TrafficType


class TestFigure1:
    def test_rows_present_for_all_traffic_types(self, small_dataset):
        result = run_figure1(small_dataset, window_days=1.5)
        assert set(result.results) == set(TrafficType.all())
        for detection in result.results.values():
            assert detection.spe.shape[0] == int(1.5 * 288)
            assert detection.spe_threshold > 0
            assert detection.t2_threshold > 0

    def test_periodicity_removed_claim(self, small_dataset):
        result = run_figure1(small_dataset, window_days=2.0)
        for traffic_type in TrafficType.all():
            assert result.periodicity_removed(traffic_type)

    def test_anomalies_appear_as_spikes(self, small_dataset):
        result = run_figure1(small_dataset, window_days=2.0)
        flagged = set()
        for traffic_type in TrafficType.all():
            flagged.update(result.spike_bins(traffic_type))
        injected_bins = {b for a in small_dataset.ground_truth for b in a.bins}
        assert flagged & injected_bins

    def test_render_contains_sections(self, small_dataset):
        text = run_figure1(small_dataset, window_days=1.0).render()
        assert "Figure 1" in text
        assert "bytes" in text and "packets" in text and "flows" in text

    def test_invalid_window(self, small_dataset):
        with pytest.raises(ValueError):
            run_figure1(small_dataset, window_days=0)


class TestTable1:
    def test_counts_structure_and_claims(self, small_dataset):
        result = run_table1(small_dataset, week_by_week=False)
        assert set(result.counts) == {"B", "F", "P", "BF", "BP", "FP", "BFP"}
        assert result.total_events > 0
        # the paper's structural claim: byte-and-flow-only detections are rare
        assert result.counts["BF"] <= 1
        text = result.render()
        assert "Table 1" in text and "BFP" in text

    def test_paper_counts_embedded_for_comparison(self, small_dataset):
        result = run_table1(small_dataset, week_by_week=False)
        assert result.paper_counts["F"] == 142
        assert sum(result.paper_counts.values()) == 383


class TestFigure2:
    def test_histograms_cover_all_events(self, small_dataset):
        result = run_figure2(small_dataset)
        assert result.n_events > 0
        assert len(result.durations_minutes) == len(result.od_flow_counts)
        assert all(d >= 5.0 for d in result.durations_minutes)
        assert all(c >= 1 for c in result.od_flow_counts)

    def test_most_anomalies_are_small(self, small_dataset):
        result = run_figure2(small_dataset)
        assert result.fraction_short(60.0) > 0.5
        assert result.median_od_flows() <= 8

    def test_render(self, small_dataset):
        text = run_figure2(small_dataset).render()
        assert "duration" in text and "OD flows" in text


class TestTable2:
    def test_signatures_consistent_for_detected_types(self, small_dataset):
        result = run_table2(small_dataset)
        assert result.overall_consistency() > 0.6
        alpha = result.observation(AnomalyType.ALPHA)
        assert alpha.n_injected > 0
        assert alpha.detection_rate > 0.6
        # ALPHA events must exhibit the dominant source+destination signature
        assert alpha.dominant_src_count >= alpha.n_detected * 0.8
        assert alpha.dominant_dst_count >= alpha.n_detected * 0.8

    def test_render(self, small_dataset):
        text = run_table2(small_dataset).render()
        assert "Table 2" in text and "ALPHA" in text


class TestTable3:
    def test_cross_tab_and_headline_numbers(self, small_dataset):
        result = run_table3(small_dataset, week_by_week=False)
        assert result.total_events() > 0
        assert 0.0 <= result.false_alarm_fraction() <= 0.3
        assert result.detection.detection_rate > 0.6
        assert result.classification_accuracy() > 0.5
        # DOS attacks must not be byte-only detections (paper's claim)
        assert result.dos_in_byte_only_row() == 0
        text = result.render()
        assert "Table 3" in text and "False Alarm" in text

    def test_alpha_detected_in_byte_involving_rows(self, small_dataset):
        result = run_table3(small_dataset, week_by_week=False)
        if result.column_total("ALPHA"):
            assert result.alpha_in_byte_rows_fraction() > 0.5


class TestAblations:
    def test_t2_ablation(self, small_dataset):
        result = run_ablation_t2(small_dataset)
        assert result.with_t2.n_detected >= result.without_t2.n_detected
        assert result.anomalies_only_caught_with_t2 >= 0
        assert "T2" in result.render()

    def test_k_sweep(self, small_dataset):
        result = run_ablation_k(small_dataset, k_values=(2, 4, 8))
        assert set(result.metrics_by_k) == {2, 4, 8}
        for metrics in result.metrics_by_k.values():
            assert 0.0 <= metrics.detection_rate <= 1.0
        assert "k=4 (paper)" in result.render()


class TestBaselineComparison:
    def test_subspace_compares_against_all_baselines(self, small_dataset):
        result = run_baseline_comparison(small_dataset)
        assert len(result.baselines) == 3
        assert result.subspace.detection_rate > 0.5
        for metrics in result.baselines.values():
            assert 0.0 <= metrics.detection_rate <= 1.0
        assert "subspace" in result.render()


class TestResolutionExperiment:
    def test_meets_paper_targets(self, small_dataset):
        # A coarser sampling rate keeps enough surviving records for the
        # resolution-rate estimate to have small variance in a fast test;
        # the rate itself does not depend on the sampling rate.
        from repro.flows.sampling import SamplingConfig

        result = run_resolution_experiment(
            small_dataset, n_bins=3, volume_scale=2e-3,
            sampling=SamplingConfig(sampling_rate=0.1))
        assert result.n_synthesized_records > 0
        assert result.n_sampled_records > 200
        assert result.meets_paper_targets(flow_target=0.90, byte_target=0.88)
        assert "resolution" in result.render()

    def test_unresolvable_fraction_lowers_rate(self, small_dataset):
        clean = run_resolution_experiment(small_dataset, n_bins=1,
                                          unresolvable_fraction=0.0)
        dirty = run_resolution_experiment(small_dataset, n_bins=1,
                                          unresolvable_fraction=0.4)
        assert clean.flow_resolution_rate > dirty.flow_resolution_rate
