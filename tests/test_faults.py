"""Unit tests of the fault-injection primitives (``repro.faults``).

The chaos invariants themselves live in ``tests/test_chaos.py``; these
tests pin down the primitives' contracts — deterministic schedules,
fire-exactly-once semantics, seeded corruption, input validation.
"""

import pytest

from repro.faults import FailingSink, FaultInjection, FaultPlan
from repro.faults.corrupt import corrupt_checkpoint


class _FakeProcess:
    def __init__(self):
        self.killed = False

    def kill(self):
        self.killed = True

    def join(self):
        pass


class _FakePool:
    def __init__(self, n_workers):
        self.processes = [_FakeProcess() for _ in range(n_workers)]


class TestFaultPlan:
    def test_kill_fires_once_at_scheduled_chunk(self):
        plan = FaultPlan().kill_worker(at_chunk=3, worker=1)
        pool = _FakePool(2)
        plan.hook(2, pool)
        assert not pool.processes[1].killed
        plan.hook(3, pool)
        assert pool.processes[1].killed
        assert plan.fired == 1
        # A restarted attempt replaying the same chunks must not re-kill.
        fresh_pool = _FakePool(2)
        plan.hook(3, fresh_pool)
        plan.hook(4, fresh_pool)
        assert not fresh_pool.processes[1].killed
        assert plan.pending() == []

    def test_overdue_injection_fires_on_late_resume(self):
        # A restart that resumes past the scheduled chunk still injects.
        plan = FaultPlan().kill_worker(at_chunk=3, worker=0)
        pool = _FakePool(1)
        plan.hook(7, pool)
        assert pool.processes[0].killed

    def test_stall_uses_injected_sleep(self):
        sleeps = []
        plan = FaultPlan(sleep=sleeps.append).stall(at_chunk=2, seconds=0.5)
        plan.hook(2, _FakePool(1))
        assert sleeps == [0.5]

    def test_reset_rearms_the_schedule(self):
        plan = FaultPlan().kill_worker(at_chunk=0)
        plan.hook(0, _FakePool(1))
        assert plan.fired == 1
        plan.reset()
        assert plan.fired == 0
        pool = _FakePool(1)
        plan.hook(0, pool)
        assert pool.processes[0].killed

    def test_random_kills_are_seed_deterministic(self):
        first = FaultPlan.random_kills(seed=7, n_chunks=20, n_workers=4,
                                       n_kills=3)
        second = FaultPlan.random_kills(seed=7, n_chunks=20, n_workers=4,
                                        n_kills=3)
        assert first.injections == second.injections
        assert len(first.injections) == 3
        assert all(1 <= i.at_chunk < 20 for i in first.injections)
        different = FaultPlan.random_kills(seed=8, n_chunks=20, n_workers=4,
                                           n_kills=3)
        assert different.injections != first.injections

    def test_describe_lists_schedule(self):
        plan = (FaultPlan().kill_worker(at_chunk=2, worker=1)
                .stall(at_chunk=5, seconds=0.25))
        lines = plan.describe()
        assert lines == ["chunk 2: kill worker 1",
                         "chunk 5: stall feed 0.250s"]

    def test_invalid_injections_rejected(self):
        with pytest.raises(ValueError):
            FaultInjection(kind="meteor", at_chunk=0)
        with pytest.raises(ValueError):
            FaultInjection(kind="kill_worker", at_chunk=-1)
        with pytest.raises(ValueError):
            FaultInjection(kind="stall", at_chunk=0, seconds=-1.0)


class TestCorruptCheckpoint:
    def test_validation(self, tmp_path):
        with pytest.raises(ValueError, match="mode"):
            corrupt_checkpoint(tmp_path, mode="shred")
        with pytest.raises(ValueError, match="no checkpoint manifest"):
            corrupt_checkpoint(tmp_path)

    def test_truncate_halves_the_manifest(self, tmp_path):
        manifest = tmp_path / "manifest.json"
        manifest.write_text('{"arrays_file": "state-x.npz"}' + " " * 100)
        original_size = manifest.stat().st_size
        (victim,) = corrupt_checkpoint(tmp_path, mode="truncate",
                                       target="manifest")
        assert victim == str(manifest)
        assert manifest.stat().st_size == original_size // 2

    def test_bitflip_changes_exactly_n_bits(self, tmp_path):
        manifest = tmp_path / "manifest.json"
        payload = bytes(range(256))
        manifest.write_bytes(payload)
        corrupt_checkpoint(tmp_path, mode="bitflip", seed=3, n_bits=5,
                           target="manifest")
        damaged = manifest.read_bytes()
        assert len(damaged) == len(payload)
        flipped = sum(bin(a ^ b).count("1")
                      for a, b in zip(payload, damaged))
        assert flipped == 5


class TestFailingSink:
    def test_always_raises_and_records(self):
        sink = FailingSink("down for maintenance")
        with pytest.raises(ConnectionError, match="down for maintenance"):
            sink.emit({"n": 1})
        with pytest.raises(ConnectionError):
            sink.emit({"n": 2})
        assert [p["n"] for p in sink.attempted] == [1, 2]
