"""Unit tests for the per-bin flow-composition model and dominance queries."""

import pytest

from repro.flows.composition import BinComposition, FlowCompositionModel, FlowGroup
from repro.flows.records import TCP
from repro.flows.timeseries import TrafficType
from repro.routing.prefixes import parse_ipv4


def _group(src="10.0.0.1", dst="10.1.0.1", sport=1000, dport=80,
           bytes_=100.0, packets=10.0, flows=1.0, **kwargs):
    return FlowGroup(src_address=parse_ipv4(src), dst_address=parse_ipv4(dst),
                     src_port=sport, dst_port=dport, protocol=TCP,
                     bytes=bytes_, packets=packets, flows=flows, **kwargs)


class TestFlowGroup:
    def test_volume_lookup(self):
        group = _group(bytes_=5, packets=3, flows=2)
        assert group.volume(TrafficType.BYTES) == 5
        assert group.volume(TrafficType.PACKETS) == 3
        assert group.volume(TrafficType.FLOWS) == 2

    def test_negative_volume_rejected(self):
        with pytest.raises(ValueError):
            _group(bytes_=-1)

    def test_spreads_must_be_positive(self):
        with pytest.raises(ValueError):
            _group(n_src_addresses=0)


class TestBinCompositionDominance:
    def test_single_heavy_group_dominates_everything(self):
        groups = [_group(bytes_=90), _group(src="10.5.0.1", dst="10.6.0.1",
                                            sport=2222, dport=443, bytes_=10)]
        composition = BinComposition(("A", "B"), 0, groups)
        assert composition.dominant_value("dst_port", TrafficType.BYTES) == 80
        assert composition.has_dominant("src_range", TrafficType.BYTES)
        assert composition.has_dominant("dst_range", TrafficType.BYTES)

    def test_below_threshold_not_dominant(self):
        groups = [_group(dport=port, src=f"10.{i}.0.1", bytes_=10)
                  for i, port in enumerate(range(1000, 1010))]
        composition = BinComposition(("A", "B"), 0, groups)
        assert composition.dominant_value("dst_port", TrafficType.BYTES) is None
        assert composition.dominant_value("src_range", TrafficType.BYTES) is None

    def test_spread_dilutes_dominance(self):
        # One group carries 60% of the flows but spans 1000 destination
        # addresses, so no single destination range is dominant.
        spread_group = _group(flows=60, n_dst_addresses=1000)
        focused_group = _group(dst="10.9.0.1", flows=40)
        composition = BinComposition(("A", "B"), 0, [spread_group, focused_group])
        dominant = composition.dominant_value("dst_range", TrafficType.FLOWS)
        assert dominant == parse_ipv4("10.9.0.0")

    def test_port_spread_dilutes_port_dominance(self):
        # Port scan: 80 flows spread over 500 destination ports, so even the
        # group's representative port carries a negligible share.
        scan_group = _group(dport=7, flows=80, n_dst_ports=500)
        web_group = _group(dport=80, flows=19)
        composition = BinComposition(("A", "B"), 0, [scan_group, web_group])
        assert composition.dominant_value("dst_port", TrafficType.FLOWS) is None

    def test_dominant_value_respects_threshold_argument(self):
        groups = [_group(bytes_=30), _group(src="10.5.0.1", dport=443, bytes_=70)]
        composition = BinComposition(("A", "B"), 0, groups)
        assert composition.dominant_value("dst_port", TrafficType.BYTES,
                                          threshold=0.5) == 443
        assert composition.dominant_value("dst_port", TrafficType.BYTES,
                                          threshold=0.75) is None

    def test_empty_composition(self):
        composition = BinComposition(("A", "B"), 0, [])
        assert composition.total(TrafficType.BYTES) == 0.0
        assert composition.dominant_value("dst_port", TrafficType.BYTES) is None

    def test_dominant_summary_keys(self):
        composition = BinComposition(("A", "B"), 0, [_group()])
        summary = composition.dominant_summary(TrafficType.BYTES)
        assert set(summary) == {"src_range", "dst_range", "src_port", "dst_port"}

    def test_merge_requires_same_cell(self):
        a = BinComposition(("A", "B"), 0, [_group()])
        b = BinComposition(("A", "B"), 1, [_group()])
        with pytest.raises(ValueError):
            a.merge(b)
        same = BinComposition(("A", "B"), 0, [_group(dport=443)])
        merged = a.merge(same)
        assert len(merged.groups) == 2

    def test_unknown_attribute_rejected(self):
        composition = BinComposition(("A", "B"), 0, [_group()])
        with pytest.raises(ValueError):
            composition.dominant_value("protocol", TrafficType.BYTES)


class TestFlowCompositionModel:
    def test_background_totals_match_series(self, abilene, clean_series):
        model = FlowCompositionModel(abilene, seed=1)
        od_pair = ("LOSA", "NYCM")
        composition = model.composition(clean_series, od_pair, 10)
        column = clean_series.od_index(*od_pair)
        for traffic_type in TrafficType.all():
            expected = clean_series.matrix(traffic_type)[10, column]
            assert composition.total(traffic_type) == pytest.approx(expected, rel=1e-6)

    def test_background_has_no_dominant_source(self, abilene, clean_series):
        model = FlowCompositionModel(abilene, seed=1)
        composition = model.composition(clean_series, ("CHIN", "WASH"), 50)
        assert composition.dominant_value("src_range", TrafficType.FLOWS) is None

    def test_composition_deterministic(self, abilene, clean_series):
        model = FlowCompositionModel(abilene, seed=7)
        a = model.composition(clean_series, ("ATLA", "DNVR"), 3)
        b = model.composition(clean_series, ("ATLA", "DNVR"), 3)
        assert [g.src_address for g in a.groups] == [g.src_address for g in b.groups]

    def test_injected_groups_included_and_residual_preserved(self, abilene, clean_series):
        series = clean_series.copy()
        model = FlowCompositionModel(abilene, seed=1)
        od_pair = ("LOSA", "NYCM")
        column = series.od_index(*od_pair)
        injected = _group(bytes_=series.matrix(TrafficType.BYTES)[5, column] * 2,
                          packets=10.0, flows=1.0, label="alpha")
        model.register_injected_groups(od_pair, 5, [injected])
        series.matrix(TrafficType.BYTES)[5, column] *= 3  # injection tripled the cell
        composition = model.composition(series, od_pair, 5)
        assert "alpha" in composition.labels()
        assert composition.total(TrafficType.BYTES) == pytest.approx(
            series.matrix(TrafficType.BYTES)[5, column], rel=1e-6)

    def test_injected_bin_index_override(self, abilene, clean_series):
        model = FlowCompositionModel(abilene, seed=1)
        od_pair = ("LOSA", "NYCM")
        model.register_injected_groups(od_pair, 100, [_group(label="alpha")])
        window = clean_series.window(95, 110)
        with_override = model.composition(window, od_pair, 5, injected_bin_index=100)
        without = model.composition(window, od_pair, 5)
        assert "alpha" in with_override.labels()
        assert "alpha" not in without.labels()

    def test_injected_cells_listing(self, abilene):
        model = FlowCompositionModel(abilene, seed=1)
        model.register_injected_groups(("LOSA", "NYCM"), 4, [_group()])
        assert model.injected_cells() == [(("LOSA", "NYCM"), 4)]
        assert len(model.injected_groups(("LOSA", "NYCM"), 4)) == 1
        assert model.injected_groups(("LOSA", "NYCM"), 5) == []
