"""Unit tests for flow records and the packet-sampling simulator."""

import pytest

from repro.flows.records import TCP, FiveTuple, FlowRecord, PacketRecord
from repro.flows.sampling import PacketSampler, SamplingConfig, sample_flow_records
from repro.routing.prefixes import parse_ipv4


def _key(src="10.0.0.1", dst="10.1.0.1", sport=1234, dport=80, proto=TCP):
    return FiveTuple(src_address=parse_ipv4(src), dst_address=parse_ipv4(dst),
                     src_port=sport, dst_port=dport, protocol=proto)


class TestFiveTuple:
    def test_reversed_swaps_endpoints(self):
        key = _key()
        rev = key.reversed()
        assert rev.src_address == key.dst_address
        assert rev.dst_port == key.src_port
        assert rev.reversed() == key

    def test_port_range_validated(self):
        with pytest.raises(ValueError):
            _key(sport=70000)

    def test_str_contains_addresses(self):
        assert "10.0.0.1" in str(_key())


class TestFlowRecord:
    def test_properties_mirror_key(self):
        record = FlowRecord(key=_key(), start_time=0, end_time=30, bytes=100, packets=2)
        assert record.src_port == 1234
        assert record.dst_port == 80
        assert record.protocol == TCP
        assert record.duration == 30

    def test_od_pair_none_until_resolved(self):
        record = FlowRecord(key=_key(), start_time=0, end_time=1, bytes=1, packets=1)
        assert record.od_pair is None
        resolved = record.with_od("A", "B")
        assert resolved.od_pair == ("A", "B")
        # original is unchanged (records are immutable)
        assert record.od_pair is None

    def test_scaled(self):
        record = FlowRecord(key=_key(), start_time=0, end_time=1, bytes=10, packets=2)
        scaled = record.scaled(100.0)
        assert scaled.bytes == 1000
        assert scaled.packets == 200

    def test_invalid_times_rejected(self):
        with pytest.raises(ValueError):
            FlowRecord(key=_key(), start_time=10, end_time=5, bytes=1, packets=1)


class TestSamplingConfig:
    def test_inverse_rate(self):
        assert SamplingConfig(sampling_rate=0.01).inverse_rate == pytest.approx(100.0)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            SamplingConfig(sampling_rate=0.0)
        with pytest.raises(ValueError):
            SamplingConfig(sampling_rate=1.5)


class TestPacketSampler:
    def _packets(self, n, key=None, size=100, start=0.0):
        key = key or _key()
        return [PacketRecord(timestamp=start + i * 0.01, key=key, size_bytes=size,
                             observing_router="A-rtr")
                for i in range(n)]

    def test_samples_roughly_the_configured_fraction(self):
        sampler = PacketSampler(SamplingConfig(sampling_rate=0.1), seed=0)
        n_sampled = sampler.observe_many(self._packets(20_000))
        assert 0.08 * 20_000 < n_sampled < 0.12 * 20_000

    def test_export_aggregates_per_five_tuple(self):
        sampler = PacketSampler(SamplingConfig(sampling_rate=0.999999), seed=0)
        key_a, key_b = _key(sport=1000), _key(sport=2000)
        sampler.observe_many(self._packets(50, key=key_a))
        sampler.observe_many(self._packets(30, key=key_b))
        records = sampler.export()
        assert len(records) == 2
        by_key = {r.key: r for r in records}
        assert by_key[key_a].packets == 50
        assert by_key[key_b].packets == 30
        assert by_key[key_a].bytes == 50 * 100

    def test_export_clears_accumulator(self):
        sampler = PacketSampler(SamplingConfig(sampling_rate=0.999999), seed=0)
        sampler.observe_many(self._packets(10))
        assert len(sampler.export()) == 1
        assert sampler.export() == []

    def test_export_splits_by_interval(self):
        sampler = PacketSampler(SamplingConfig(sampling_rate=0.999999,
                                               export_interval_seconds=60), seed=0)
        sampler.observe_many(self._packets(10, start=0.0))
        sampler.observe_many(self._packets(10, start=65.0))
        assert len(sampler.export()) == 2

    def test_rescale_option(self):
        sampler = PacketSampler(SamplingConfig(sampling_rate=0.5, rescale=True), seed=1)
        sampler.observe_many(self._packets(1000))
        records = sampler.export()
        total_packets = sum(r.packets for r in records)
        # rescaled counts estimate the original 1000 packets
        assert 800 < total_packets < 1200


class TestSampleFlowRecords:
    def _true_flow(self, packets, bytes_=None):
        return FlowRecord(key=_key(), start_time=0, end_time=60,
                          bytes=bytes_ if bytes_ is not None else packets * 100.0,
                          packets=packets)

    def test_preserves_volume_in_expectation(self):
        flows = [self._true_flow(1000) for _ in range(200)]
        sampled = sample_flow_records(flows, SamplingConfig(sampling_rate=0.01), seed=2)
        total_packets = sum(r.packets for r in sampled)
        expected = 200 * 1000 * 0.01
        assert 0.8 * expected < total_packets < 1.2 * expected

    def test_small_flows_thinned_out(self):
        flows = [self._true_flow(1) for _ in range(1000)]
        sampled = sample_flow_records(flows, SamplingConfig(sampling_rate=0.01), seed=3)
        # With 1% sampling most single-packet flows disappear entirely.
        assert len(sampled) < 50

    def test_zero_packet_flows_dropped(self):
        flows = [self._true_flow(0, bytes_=0.0)]
        assert sample_flow_records(flows, seed=1) == []

    def test_deterministic_given_seed(self):
        flows = [self._true_flow(500) for _ in range(50)]
        a = sample_flow_records(flows, seed=9)
        b = sample_flow_records(flows, seed=9)
        assert [r.packets for r in a] == [r.packets for r in b]

    def test_mean_packet_size_preserved(self):
        flows = [self._true_flow(1000, bytes_=1000 * 640.0)]
        sampled = sample_flow_records(flows, SamplingConfig(sampling_rate=0.1), seed=4)
        assert len(sampled) == 1
        assert sampled[0].bytes / sampled[0].packets == pytest.approx(640.0)
