"""Unit tests for the TrafficMatrixSeries container and flow aggregation."""

import numpy as np
import pytest

from repro.flows.aggregation import FlowAggregator, aggregate_records
from repro.flows.records import FiveTuple, FlowRecord, TCP
from repro.flows.timeseries import TrafficMatrixSeries, TrafficType
from repro.routing.prefixes import parse_ipv4
from repro.utils.timebins import TimeBinning


def _series(n_bins=10, pairs=(("A", "B"), ("B", "A"))):
    binning = TimeBinning(n_bins=n_bins, bin_seconds=300)
    matrices = {
        TrafficType.BYTES: np.ones((n_bins, len(pairs))) * 100.0,
        TrafficType.PACKETS: np.ones((n_bins, len(pairs))) * 10.0,
        TrafficType.FLOWS: np.ones((n_bins, len(pairs))),
    }
    return TrafficMatrixSeries(list(pairs), binning, matrices)


class TestTrafficType:
    def test_short_labels(self):
        assert TrafficType.BYTES.short_label == "B"
        assert TrafficType.PACKETS.short_label == "P"
        assert TrafficType.FLOWS.short_label == "F"

    def test_from_short_label_roundtrip(self):
        for traffic_type in TrafficType.all():
            assert TrafficType.from_short_label(traffic_type.short_label) is traffic_type

    def test_from_short_label_rejects_unknown(self):
        with pytest.raises(ValueError):
            TrafficType.from_short_label("X")


class TestConstruction:
    def test_shape_validation(self):
        binning = TimeBinning(n_bins=5, bin_seconds=300)
        with pytest.raises(ValueError):
            TrafficMatrixSeries([("A", "B")], binning,
                                {TrafficType.BYTES: np.ones((4, 1))})

    def test_negative_values_rejected(self):
        binning = TimeBinning(n_bins=2, bin_seconds=300)
        with pytest.raises(ValueError):
            TrafficMatrixSeries([("A", "B")], binning,
                                {TrafficType.BYTES: np.array([[-1.0], [1.0]])})

    def test_duplicate_od_pairs_rejected(self):
        binning = TimeBinning(n_bins=2, bin_seconds=300)
        with pytest.raises(ValueError):
            TrafficMatrixSeries([("A", "B"), ("A", "B")], binning,
                                {TrafficType.BYTES: np.ones((2, 2))})

    def test_zeros_constructor(self):
        series = TrafficMatrixSeries.zeros([("A", "B")], TimeBinning(n_bins=3))
        assert series.n_bins == 3
        assert series.matrix(TrafficType.FLOWS).sum() == 0


class TestAccessors:
    def test_od_series_and_total(self):
        series = _series()
        assert series.od_series(TrafficType.BYTES, "A", "B").shape == (10,)
        assert series.total_series(TrafficType.BYTES)[0] == pytest.approx(200.0)

    def test_od_index_unknown(self):
        with pytest.raises(KeyError):
            _series().od_index("A", "Z")

    def test_missing_traffic_type(self):
        binning = TimeBinning(n_bins=2)
        series = TrafficMatrixSeries([("A", "B")], binning,
                                     {TrafficType.BYTES: np.ones((2, 1))})
        with pytest.raises(KeyError):
            series.matrix(TrafficType.FLOWS)


class TestMutation:
    def test_add_clips_at_zero(self):
        series = _series()
        series.add(TrafficType.BYTES, 0, "A", "B", -1e9)
        assert series.matrix(TrafficType.BYTES)[0, 0] == 0.0

    def test_add_block(self):
        series = _series()
        series.add_block(TrafficType.FLOWS, [1, 2, 3], "A", "B", [5, 5, 5])
        assert np.allclose(series.od_series(TrafficType.FLOWS, "A", "B")[1:4], 6.0)

    def test_scale_od_returns_delta(self):
        series = _series()
        delta = series.scale_od(TrafficType.BYTES, "A", "B", [0, 1], 0.0)
        assert np.allclose(delta, -100.0)
        assert series.matrix(TrafficType.BYTES)[0, 0] == 0.0


class TestTransformations:
    def test_window(self):
        series = _series(n_bins=10)
        window = series.window(2, 6)
        assert window.n_bins == 4
        assert window.binning.start_seconds == series.binning.bin_start(2)

    def test_window_is_a_copy(self):
        series = _series()
        window = series.window(0, 5)
        window.matrix(TrafficType.BYTES)[:] = 0.0
        assert series.matrix(TrafficType.BYTES).sum() > 0

    def test_select_od_pairs(self):
        series = _series()
        selected = series.select_od_pairs([("B", "A")])
        assert selected.n_od_pairs == 1
        assert selected.od_pairs == [("B", "A")]

    def test_rebin_sums_volumes(self):
        binning = TimeBinning(n_bins=10, bin_seconds=60)
        matrices = {TrafficType.BYTES: np.arange(10, dtype=float).reshape(10, 1)}
        series = TrafficMatrixSeries([("A", "B")], binning, matrices)
        coarse = series.rebin(300)
        assert coarse.n_bins == 2
        assert coarse.matrix(TrafficType.BYTES)[0, 0] == pytest.approx(0 + 1 + 2 + 3 + 4)
        assert coarse.matrix(TrafficType.BYTES)[1, 0] == pytest.approx(5 + 6 + 7 + 8 + 9)

    def test_rebin_requires_divisibility(self):
        series = _series(n_bins=7)
        with pytest.raises(ValueError):
            series.rebin(600)

    def test_copy_and_allclose(self):
        series = _series()
        clone = series.copy()
        assert series.allclose(clone)
        clone.matrix(TrafficType.BYTES)[0, 0] += 1
        assert not series.allclose(clone)

    def test_summary_keys(self):
        summary = _series().summary()
        assert set(summary.keys()) == {"bytes", "packets", "flows"}
        assert summary["bytes"]["nonzero_fraction"] == 1.0


class TestAggregation:
    def _record(self, start_time, origin="A", destination="B", bytes_=100.0,
                packets=5.0):
        key = FiveTuple(src_address=parse_ipv4("10.0.0.1"),
                        dst_address=parse_ipv4("10.1.0.1"),
                        src_port=1000, dst_port=80, protocol=TCP)
        return FlowRecord(key=key, start_time=start_time, end_time=start_time + 10,
                          bytes=bytes_, packets=packets,
                          ingress_pop=origin, egress_pop=destination)

    def test_records_summed_into_cells(self):
        binning = TimeBinning(n_bins=4, bin_seconds=300)
        records = [self._record(10), self._record(20), self._record(700)]
        series = aggregate_records(records, [("A", "B")], binning)
        assert series.matrix(TrafficType.BYTES)[0, 0] == pytest.approx(200.0)
        assert series.matrix(TrafficType.FLOWS)[0, 0] == pytest.approx(2.0)
        assert series.matrix(TrafficType.BYTES)[2, 0] == pytest.approx(100.0)

    def test_unresolved_records_dropped(self):
        binning = TimeBinning(n_bins=2, bin_seconds=300)
        aggregator = FlowAggregator([("A", "B")], binning)
        key = FiveTuple(src_address=1, dst_address=2, src_port=1, dst_port=2, protocol=6)
        unresolved = FlowRecord(key=key, start_time=0, end_time=1, bytes=1, packets=1)
        assert not aggregator.add(unresolved)
        assert aggregator.dropped_records == 1

    def test_unknown_od_pair_dropped_or_strict(self):
        binning = TimeBinning(n_bins=2, bin_seconds=300)
        record = self._record(0, origin="X", destination="Y")
        lenient = FlowAggregator([("A", "B")], binning)
        assert not lenient.add(record)
        strict = FlowAggregator([("A", "B")], binning, strict=True)
        with pytest.raises(ValueError):
            strict.add(record)

    def test_out_of_range_time_dropped(self):
        binning = TimeBinning(n_bins=2, bin_seconds=300)
        aggregator = FlowAggregator([("A", "B")], binning)
        assert not aggregator.add(self._record(10_000))
        assert aggregator.dropped_records == 1
