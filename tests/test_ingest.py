"""CSV flow-record parser/exporter: round trips, dirty data, parallelism.

The committed fixture ``tests/data/flows_fixture.csv`` is a deliberately
dirty concatenated export: a stray mid-file header, a blank line, a
malformed address, a NaN byte count, a negative byte count, an inverted
time range, an out-of-range port, and a record without a router name.
Every dirty-row policy is pinned against it.
"""

import os

import numpy as np
import pytest

from repro.flows.records import FiveTuple, FlowRecord
from repro.ingest import (
    FLOW_CSV_COLUMNS,
    ParseStats,
    export_flow_csv,
    read_flow_batches,
)

FIXTURE = os.path.join(os.path.dirname(__file__), "data",
                       "flows_fixture.csv")


def _records():
    return [
        FlowRecord(FiveTuple(167772161, 167772162, 1234, 80, 6),
                   0.0, 10.0, 1000.0, 10.0, observing_router="r1"),
        FlowRecord(FiveTuple(3232235521, 167772162, 4321, 443, 17),
                   300.5, 310.25, 2048.125, 4.0, observing_router="r2"),
        FlowRecord(FiveTuple(1, 2, 0, 0, 0),
                   600.0, 600.0, 0.5, 1.0),
    ]


def _read_all(path, **kwargs):
    stats = kwargs.pop("stats", ParseStats())
    batches = list(read_flow_batches(path, stats=stats, **kwargs))
    return batches, stats


class TestExportRoundTrip:
    def test_export_then_parse_is_lossless(self, tmp_path):
        path = tmp_path / "flows.csv"
        records = _records()
        assert export_flow_csv(records, path) == len(records)
        batches, stats = _read_all(str(path))
        assert stats.engine == "numpy"
        assert stats.records == len(records)
        assert stats.bad_rows == 0
        assert stats.header_rows == 1
        (batch,) = batches
        assert batch.n_records == len(records)
        assert batch.src_addr.dtype == np.int64
        assert batch.start_time.dtype == np.float64
        for i, record in enumerate(records):
            assert batch.src_addr[i] == record.src_address
            assert batch.dst_addr[i] == record.dst_address
            assert batch.src_port[i] == record.src_port
            assert batch.protocol[i] == record.protocol
            # repr shortest-round-trip floats survive the text hop exactly.
            assert batch.start_time[i] == record.start_time
            assert batch.end_time[i] == record.end_time
            assert batch.bytes[i] == record.bytes
            assert batch.packets[i] == record.packets
            assert batch.router[i] == (record.observing_router or "")

    def test_append_reproduces_concatenated_export(self, tmp_path):
        path = tmp_path / "cat.csv"
        export_flow_csv(_records(), path)
        export_flow_csv(_records(), path, append=True, header=True)
        batches, stats = _read_all(str(path))
        assert stats.header_rows == 2
        assert stats.records == 2 * len(_records())
        assert sum(b.n_records for b in batches) == stats.records

    def test_multiple_paths_are_logically_concatenated(self, tmp_path):
        first, second = tmp_path / "a.csv", tmp_path / "b.csv"
        export_flow_csv(_records(), first)
        export_flow_csv(_records(), second)
        batches, stats = _read_all([str(first), str(second)])
        assert stats.records == 2 * len(_records())
        assert stats.header_rows == 2
        assert sum(b.n_records for b in batches) == stats.records

    def test_dotted_quad_addresses_parse_to_integers(self, tmp_path):
        path = tmp_path / "dotted.csv"
        path.write_text(",".join(FLOW_CSV_COLUMNS) + "\n"
                        "10.0.0.1,192.168.0.1,1,2,6,0,1,10,1,r1\n")
        (batch,), stats = _read_all(str(path))
        assert batch.src_addr[0] == 167772161
        assert batch.dst_addr[0] == 3232235521
        assert stats.records == 1


class TestDirtyDataPolicies:
    def test_skip_counts_every_kind_of_dirt(self):
        batches, stats = _read_all(FIXTURE, on_bad_row="skip")
        assert stats.header_rows == 2       # leading + mid-file concat
        assert stats.rows == 8              # data lines (blank excluded)
        assert stats.records == 3           # two clean + routerless tail row
        assert stats.bad_rows == 5
        assert stats.propagated_rows == 0
        total = sum(b.n_records for b in batches)
        assert total == 3
        # Dotted-quad and integer forms of the same address are one value.
        assert batches[0].src_addr[0] == batches[0].src_addr[1] == 167772161

    def test_propagate_keeps_nonfinite_counts_only(self):
        batches, stats = _read_all(FIXTURE, on_bad_row="propagate")
        # The NaN-bytes row rides through; the negative-bytes row, the
        # inverted time range, the bad address and the bad port stay out.
        assert stats.records == 4
        assert stats.bad_rows == 4
        assert stats.propagated_rows == 1
        merged = np.concatenate([b.bytes for b in batches])
        assert np.isnan(merged).sum() == 1

    def test_raise_pinpoints_the_offending_line(self):
        with pytest.raises(ValueError, match="bad flow-record row.*badaddr"):
            list(read_flow_batches(FIXTURE, on_bad_row="raise"))

    def test_policy_and_engine_validation(self, tmp_path):
        path = tmp_path / "x.csv"
        path.write_text("")
        with pytest.raises(ValueError):
            list(read_flow_batches(str(path), on_bad_row="ignore"))
        with pytest.raises(ValueError):
            list(read_flow_batches(str(path), engine="polars"))
        with pytest.raises(ValueError):
            list(read_flow_batches(str(path), batch_rows=0))
        with pytest.raises(ValueError):
            list(read_flow_batches(str(path), workers=0))
        with pytest.raises(ValueError):
            list(read_flow_batches([]))

    def test_pandas_engine_requires_pandas(self, tmp_path):
        try:
            import pandas  # noqa: F401
            pytest.skip("pandas installed; the missing-engine error "
                        "cannot fire")
        except ImportError:
            pass
        path = tmp_path / "x.csv"
        path.write_text("")
        with pytest.raises(RuntimeError, match="pandas is not installed"):
            list(read_flow_batches(str(path), engine="pandas"))


class TestParallelParse:
    def _flatten(self, batches):
        return {
            name: np.concatenate([getattr(b, name) for b in batches])
            for name in ("src_addr", "dst_addr", "src_port", "dst_port",
                         "protocol", "start_time", "end_time", "bytes",
                         "packets", "router")
        }

    def test_workers_produce_bit_identical_batches(self, tmp_path):
        path = tmp_path / "big.csv"
        export_flow_csv(
            [FlowRecord(FiveTuple(i + 1, 2 * i + 1, i % 65536, 80, 6),
                        float(i), float(i) + 0.5, 100.25 + i, 1.0 + i % 7,
                        observing_router=f"r{i % 3}")
             for i in range(2000)],
            path)
        serial, serial_stats = _read_all(str(path), batch_rows=256)
        parallel, parallel_stats = _read_all(str(path), batch_rows=256,
                                             workers=2)
        a, b = self._flatten(serial), self._flatten(parallel)
        for name, column in a.items():
            assert np.array_equal(column, b[name],
                                  equal_nan=column.dtype.kind == "f"), name
        assert serial_stats == parallel_stats

    def test_workers_agree_on_dirty_input(self):
        _, serial = _read_all(FIXTURE, batch_rows=2)
        _, parallel = _read_all(FIXTURE, batch_rows=2, workers=2)
        assert serial == parallel
        assert serial.records == 3 and serial.bad_rows == 5

    def test_small_batches_equal_one_big_batch(self, tmp_path):
        path = tmp_path / "flows.csv"
        export_flow_csv(_records(), path)
        small, small_stats = _read_all(str(path), batch_rows=1)
        big, big_stats = _read_all(str(path), batch_rows=10_000)
        assert self._flatten(small).keys() == self._flatten(big).keys()
        for name, column in self._flatten(small).items():
            assert np.array_equal(column, self._flatten(big)[name]), name
        assert small_stats == big_stats


def test_parse_stats_merge_sums_counters():
    left = ParseStats(rows=3, records=2, bad_rows=1, header_rows=1,
                      propagated_rows=0, engine="numpy")
    right = ParseStats(rows=5, records=5, bad_rows=0, header_rows=1,
                       propagated_rows=2, engine="")
    merged = left.merge(right)
    assert merged == ParseStats(rows=8, records=7, bad_rows=1,
                                header_rows=2, propagated_rows=2,
                                engine="numpy")


def test_nan_start_time_is_structurally_bad(tmp_path):
    # A NaN timestamp cannot be binned, so even "propagate" rejects it —
    # only non-finite *counts* ride through.
    path = tmp_path / "nan_time.csv"
    path.write_text("1,2,3,4,6,nan,1,10,1,r1\n")
    batches, stats = _read_all(str(path), on_bad_row="propagate")
    assert stats.bad_rows == 1 and stats.records == 0
    assert batches == []
