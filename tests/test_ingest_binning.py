"""FlowRecordBinner: byte-parity with FlowAggregator, watermark discipline.

The load-bearing invariant: accumulating a record stream through the
vectorized binner produces matrices **bit-identical** to the sequential
``aggregate_records`` path (``np.add.at`` is unbuffered, so the per-cell
addition order matches), and emission is gapless, in-order, and sealed by
the lateness watermark.
"""

import numpy as np
import pytest

from repro.flows.aggregation import aggregate_records
from repro.flows.timeseries import TrafficType
from repro.ingest import FlowRecordBinner
from repro.ingest.csv_io import RecordBatch
from repro.routing.resolver import PoPResolver
from repro.telemetry import MetricsRegistry
from repro.traffic.flowgen import FlowSynthesizer

BIN_SECONDS = 300


@pytest.fixture(scope="module")
def resolver(abilene):
    return PoPResolver(abilene)


@pytest.fixture(scope="module")
def od_pairs(abilene):
    return abilene.od_pairs()


@pytest.fixture(scope="module")
def window_records(abilene, clean_series):
    """Flow records synthesized from a 96-bin window of clean traffic."""
    window = clean_series.window(0, 96)
    synthesizer = FlowSynthesizer(abilene, seed=7, max_flows_per_cell=2)
    return window, list(synthesizer.synthesize_series(window))


@pytest.fixture(scope="module")
def proto(window_records, resolver, od_pairs):
    """One record known to resolve to an OD column."""
    _, records = window_records
    for record in records[:50]:
        binner = FlowRecordBinner(resolver, od_pairs, chunk_size=4,
                                  bin_seconds=BIN_SECONDS)
        binner.add_batch(_batch_from_records([record]))
        if binner.stats.binned == 1:
            return record
    raise AssertionError("no resolvable prototype record found")


def _batch_from_records(records):
    return RecordBatch(
        np.array([r.src_address for r in records], np.int64),
        np.array([r.dst_address for r in records], np.int64),
        np.array([r.src_port for r in records], np.int64),
        np.array([r.dst_port for r in records], np.int64),
        np.array([r.protocol for r in records], np.int64),
        np.array([r.start_time for r in records], np.float64),
        np.array([r.end_time for r in records], np.float64),
        np.array([r.bytes for r in records], np.float64),
        np.array([r.packets for r in records], np.float64),
        np.array([r.observing_router or "" for r in records], object),
    )


def _batch_at_bins(proto, bins, bytes_value=100.0):
    n = len(bins)
    start = np.array([b * BIN_SECONDS + 1.0 for b in bins], np.float64)
    return RecordBatch(
        np.full(n, proto.src_address, np.int64),
        np.full(n, proto.dst_address, np.int64),
        np.full(n, proto.src_port, np.int64),
        np.full(n, proto.dst_port, np.int64),
        np.full(n, proto.protocol, np.int64),
        start,
        start + 1.0,
        np.full(n, float(bytes_value), np.float64),
        np.full(n, 1.0, np.float64),
        np.array([proto.observing_router or ""] * n, object),
    )


def _stacked(chunks, traffic_type):
    return np.vstack([chunk.matrix(traffic_type) for chunk in chunks])


class TestByteParity:
    def test_binner_matches_flow_aggregator_bitwise(
            self, window_records, resolver, od_pairs):
        window, records = window_records
        binning = window.binning

        resolved, _ = resolver.resolve_records(records)
        direct = aggregate_records(resolved, od_pairs, binning)

        # Synthesized records are not time-sorted across batch slices, so
        # keep the whole window open: no record may be dropped as late.
        binner = FlowRecordBinner(
            resolver, od_pairs, chunk_size=32,
            bin_seconds=binning.bin_seconds,
            start_seconds=binning.start_seconds,
            n_bins=binning.n_bins,
            lateness_bins=binning.n_bins)
        chunks = []
        for start in range(0, len(records), 700):
            chunks.extend(binner.add_batch(
                _batch_from_records(records[start:start + 700])))
        chunks.extend(binner.finish())

        assert binner.stats.records == len(records)
        assert binner.stats.binned == len(resolved)
        assert chunks[0].start_bin == 0
        assert [c.start_bin for c in chunks] \
            == [32 * i for i in range(len(chunks))]
        for traffic_type in (TrafficType.BYTES, TrafficType.PACKETS,
                             TrafficType.FLOWS):
            ingested = _stacked(chunks, traffic_type)
            expected = direct.matrix(traffic_type)
            # Bitwise, not allclose: the whole point of the plane.
            assert np.array_equal(ingested, expected), traffic_type

    def test_batch_size_does_not_change_the_bits(
            self, window_records, resolver, od_pairs):
        window, records = window_records
        binning = window.binning

        def run(step):
            binner = FlowRecordBinner(
                resolver, od_pairs, chunk_size=48,
                bin_seconds=binning.bin_seconds,
                start_seconds=binning.start_seconds,
                n_bins=binning.n_bins,
                lateness_bins=binning.n_bins)
            chunks = []
            for start in range(0, len(records), step):
                chunks.extend(binner.add_batch(
                    _batch_from_records(records[start:start + step])))
            chunks.extend(binner.finish())
            return chunks

        small, big = run(137), run(100_000)
        assert len(small) == len(big)
        for a, b in zip(small, big):
            for traffic_type in a.traffic_types:
                assert np.array_equal(a.matrix(traffic_type),
                                      b.matrix(traffic_type))


class TestWatermark:
    def test_lateness_window_delays_sealing(self, resolver, od_pairs, proto):
        binner = FlowRecordBinner(resolver, od_pairs, chunk_size=2,
                                  bin_seconds=BIN_SECONDS, lateness_bins=2)
        chunks = binner.add_batch(_batch_at_bins(proto, [0, 1, 2, 3, 4, 5]))
        # High-water bin is 5; bins < 5+1-2 = 4 are sealed.
        assert [c.start_bin for c in chunks] == [0, 2]
        assert binner.emitted_watermark == 4

        # A record inside the lateness window is accepted...
        late_ok = binner.add_batch(_batch_at_bins(proto, [4], bytes_value=7.0))
        assert late_ok == [] and binner.stats.late_records == 0
        # ...one behind the emission floor is late and dropped.
        binner.add_batch(_batch_at_bins(proto, [1]))
        assert binner.stats.late_records == 1

        tail = binner.finish()
        assert [c.start_bin for c in tail] == [4]
        assert tail[0].n_bins == 2
        # The accepted in-window record landed on top of the original one.
        assert tail[0].matrix(TrafficType.FLOWS).sum() == 3.0

    def test_emission_is_gapless_with_zero_rows(self, resolver, od_pairs,
                                                proto):
        binner = FlowRecordBinner(resolver, od_pairs, chunk_size=3,
                                  bin_seconds=BIN_SECONDS)
        chunks = binner.add_batch(_batch_at_bins(proto, [0, 5]))
        chunks += binner.finish()
        stacked = _stacked(chunks, TrafficType.BYTES)
        assert stacked.shape[0] == 6
        assert [c.start_bin for c in chunks] == [0, 3]
        touched = np.nonzero(stacked.sum(axis=1))[0]
        assert touched.tolist() == [0, 5]
        flows = _stacked(chunks, TrafficType.FLOWS)
        assert flows.sum() == 2.0

    def test_out_of_range_records_are_counted(self, resolver, od_pairs,
                                              proto):
        binner = FlowRecordBinner(resolver, od_pairs, chunk_size=2,
                                  bin_seconds=BIN_SECONDS, n_bins=4)
        batch = _batch_at_bins(proto, [0, 10])
        batch.start_time[1] = 10 * BIN_SECONDS + 1.0
        binner.add_batch(batch)
        negative = _batch_at_bins(proto, [0])
        negative.start_time[0] = -2 * BIN_SECONDS
        negative.end_time[0] = negative.start_time[0] + 1.0
        binner.add_batch(negative)
        assert binner.stats.out_of_range == 2
        assert binner.stats.binned == 1

    def test_resume_skips_records_below_start_bin(self, resolver, od_pairs,
                                                  proto):
        binner = FlowRecordBinner(resolver, od_pairs, chunk_size=2,
                                  bin_seconds=BIN_SECONDS, n_bins=8,
                                  start_bin=4)
        chunks = binner.add_batch(_batch_at_bins(proto, [1, 2, 5]))
        chunks += binner.finish()
        assert binner.stats.skipped_records == 2
        assert binner.stats.binned == 1
        # The first resumed chunk starts exactly at the resume bin and
        # keeps the original (global multiple-of-chunk-size) boundaries.
        assert [c.start_bin for c in chunks] == [4, 6]

    def test_unresolved_records_are_counted_not_binned(self, resolver,
                                                       od_pairs):
        binner = FlowRecordBinner(resolver, od_pairs, chunk_size=2,
                                  bin_seconds=BIN_SECONDS)
        batch = RecordBatch(
            np.array([0], np.int64), np.array([0], np.int64),
            np.array([1], np.int64), np.array([2], np.int64),
            np.array([6], np.int64),
            np.array([1.0]), np.array([2.0]),
            np.array([10.0]), np.array([1.0]),
            np.array(["no-such-router"], object),
        )
        binner.add_batch(batch)
        assert binner.stats.unresolved_ingress == 1
        assert binner.stats.binned == 0
        assert binner.finish() == []

    def test_finish_is_idempotent_and_seals(self, resolver, od_pairs, proto):
        binner = FlowRecordBinner(resolver, od_pairs, chunk_size=4,
                                  bin_seconds=BIN_SECONDS)
        binner.add_batch(_batch_at_bins(proto, [0, 1]))
        assert len(binner.finish()) == 1
        assert binner.finish() == []
        with pytest.raises(ValueError, match="finished"):
            binner.add_batch(_batch_at_bins(proto, [2]))

    def test_sampling_inversion_scales_bytes_and_packets_only(
            self, resolver, od_pairs, proto):
        plain = FlowRecordBinner(resolver, od_pairs, chunk_size=2,
                                 bin_seconds=BIN_SECONDS)
        inverted = FlowRecordBinner(resolver, od_pairs, chunk_size=2,
                                    bin_seconds=BIN_SECONDS, inverse_rate=4.0)
        emitted = [
            binner.add_batch(_batch_at_bins(proto, [0, 1], bytes_value=25.0))
            + binner.finish()
            for binner in (plain, inverted)
        ]
        a, b = emitted
        assert np.array_equal(b[0].matrix(TrafficType.BYTES),
                              4.0 * a[0].matrix(TrafficType.BYTES))
        assert np.array_equal(b[0].matrix(TrafficType.PACKETS),
                              4.0 * a[0].matrix(TrafficType.PACKETS))
        # Flow counts are never rescaled: thinning is not invertible.
        assert np.array_equal(b[0].matrix(TrafficType.FLOWS),
                              a[0].matrix(TrafficType.FLOWS))

    def test_metrics_are_published_as_monotonic_counters(
            self, resolver, od_pairs, proto):
        registry = MetricsRegistry()
        binner = FlowRecordBinner(resolver, od_pairs, chunk_size=2,
                                  bin_seconds=BIN_SECONDS, registry=registry)
        binner.add_batch(_batch_at_bins(proto, [0, 1, 2]))
        binner.add_batch(_batch_at_bins(proto, [3]))
        binner.finish()
        assert registry.value("ingest_records_total") == 4
        assert registry.value("ingest_records_binned_total") == 4
