"""Round-trip parity: generator path ≡ CSV export → parse → bin path.

The ingestion plane's acceptance bar is bit-identical matrices and
identical detection events against the in-memory generator path, with and
without sampled-NetFlow thinning, plus an unbiasedness property for the
sampling inversion itself.
"""

import numpy as np
import pytest

from repro.flows.sampling import SamplingConfig, sample_flow_records
from repro.ingest import IngestConfig, round_trip_check
from repro.streaming.config import StreamingConfig
from repro.traffic.flowgen import FlowSynthesizer

STREAM_CONFIG = StreamingConfig(min_train_bins=96, recalibrate_every_bins=48)


@pytest.fixture(scope="module")
def window(clean_series):
    return clean_series.window(0, 192)


class TestRoundTrip:
    def test_plain_round_trip_is_byte_identical(self, window, abilene,
                                                tmp_path_factory):
        path = tmp_path_factory.mktemp("rt") / "flows.csv"
        report = round_trip_check(window, abilene, str(path), seed=3,
                                  max_flows_per_cell=2,
                                  streaming_config=STREAM_CONFIG)
        assert report.matrices_identical
        assert report.events_identical
        assert report.max_abs_difference == 0.0
        assert report.n_records_exported > 10_000
        assert report.n_direct_events == report.n_ingest_events > 0
        assert report.ok

    def test_sampled_round_trip_is_byte_identical(self, window, abilene,
                                                  tmp_path_factory):
        path = tmp_path_factory.mktemp("rt") / "sampled.csv"
        report = round_trip_check(window, abilene, str(path), seed=3,
                                  max_flows_per_cell=2,
                                  sampling=SamplingConfig(sampling_rate=0.5),
                                  streaming_config=STREAM_CONFIG)
        assert report.ok
        assert report.max_abs_difference == 0.0

    def test_mismatched_ingest_binning_is_rejected(self, window, abilene,
                                                   tmp_path):
        with pytest.raises(ValueError, match="match the series binning"):
            round_trip_check(window, abilene, str(tmp_path / "x.csv"),
                             seed=3, max_flows_per_cell=2,
                             ingest_config=IngestConfig(bin_seconds=60))


class TestSamplingInversion:
    @pytest.fixture(scope="class")
    def true_records(self, abilene, clean_series):
        synthesizer = FlowSynthesizer(abilene, seed=1, max_flows_per_cell=2)
        return list(synthesizer.synthesize_series(clean_series.window(0, 4)))

    def test_inversion_is_unbiased_over_seeds(self, true_records):
        # Property: E[sampled bytes × 1/q] = true bytes.  Averaging the
        # rescaled estimate over independent sampling seeds must converge
        # on the true total.
        config = SamplingConfig(sampling_rate=0.5)
        true_total = sum(r.bytes for r in true_records)
        estimates = []
        for seed in range(20):
            sampled = sample_flow_records(true_records, config, seed=seed)
            estimates.append(config.inverse_rate
                             * sum(r.bytes for r in sampled))
        assert np.isclose(np.mean(estimates), true_total, rtol=0.02)
        # Individual draws actually vary: this is sampling, not a copy.
        assert np.std(estimates) > 0

    def test_rescaled_exports_need_no_second_inversion(self, true_records):
        # rescale=True bakes 1/q into the records; the binner must then
        # apply 1.0, not 1/q again.
        rescaled = SamplingConfig(sampling_rate=0.5, rescale=True)
        plain = SamplingConfig(sampling_rate=0.5)
        assert IngestConfig(sampling=rescaled).inverse_rate == 1.0
        assert IngestConfig(sampling=plain).inverse_rate == 2.0
        assert IngestConfig().inverse_rate == 1.0

        a = sample_flow_records(true_records, rescaled, seed=9)
        b = sample_flow_records(true_records, plain, seed=9)
        assert sum(r.bytes for r in a) \
            == pytest.approx(2.0 * sum(r.bytes for r in b))
