"""The live (online) evaluation harness and its batch-vs-live deltas."""

import pytest

from repro.core.events import COMBINATION_LABELS
from repro.core.pipeline import detect_network_anomalies
from repro.datasets import DatasetConfig, generate_drifting_dataset
from repro.evaluation.live import (
    LIVE_ENGINES,
    batch_reference,
    compare_batch_live,
    engine_config,
    run_live_engine_suite,
    run_live_evaluation,
)
from repro.streaming import StreamingConfig

LIVE_CONFIG = StreamingConfig(min_train_bins=128, recalibrate_every_bins=32)


@pytest.fixture(scope="module")
def live_result(small_dataset):
    return run_live_evaluation(small_dataset, LIVE_CONFIG, chunk_size=48)


@pytest.fixture(scope="module")
def batch(small_dataset):
    return batch_reference(small_dataset)


class TestEngineConfig:
    def test_maps_all_three_engines(self):
        base = StreamingConfig(min_train_bins=100)
        exact = engine_config(base, "exact")
        assert (exact.engine, exact.n_shards) == ("exact", 1)
        sharded = engine_config(base, "sharded", n_shards=3)
        assert (sharded.engine, sharded.n_shards) == ("exact", 3)
        lowrank = engine_config(base, "lowrank")
        assert (lowrank.engine, lowrank.n_shards) == ("lowrank", 1)
        # Every other knob of the base config survives the specialization.
        assert {c.min_train_bins for c in (exact, sharded, lowrank)} == {100}

    def test_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="engine"):
            engine_config(StreamingConfig(), "batch")


class TestRunLiveEvaluation:
    def test_label_counts_cover_all_combination_labels(self, live_result):
        assert set(live_result.label_counts) == set(COMBINATION_LABELS)
        assert live_result.total_events == sum(
            len(w.events) for w in live_result.windows)

    def test_windows_tile_the_dataset(self, small_dataset, live_result):
        assert live_result.windows[0].start_bin == 0
        assert live_result.windows[-1].end_bin == small_dataset.n_bins
        for window in live_result.windows:
            assert window.report.n_bins_processed == (window.end_bin
                                                      - window.start_bin)

    def test_detects_most_injected_anomalies(self, live_result):
        assert live_result.metrics.n_ground_truth > 0
        assert live_result.metrics.detection_rate >= 0.5
        assert live_result.n_warmup_bins > 0

    def test_to_dict_and_render(self, live_result):
        data = live_result.to_dict()
        assert data["engine"] == "exact"
        assert data["n_events"] == live_result.total_events
        assert data["metrics"]["n_ground_truth"] == \
            live_result.metrics.n_ground_truth
        rendered = live_result.render()
        assert "Table 1 analogue" in rendered
        assert "detection rate" in rendered

    def test_rejects_unlabeled_datasets(self, clean_dataset):
        with pytest.raises(ValueError, match="no injected anomalies"):
            run_live_evaluation(clean_dataset, LIVE_CONFIG)

    def test_engine_suite_runs_selected_engines(self, small_dataset):
        suite = run_live_engine_suite(small_dataset, LIVE_CONFIG,
                                      engines=("exact", "lowrank"),
                                      chunk_size=48)
        assert set(suite) == {"exact", "lowrank"}
        assert all(result.metrics.n_ground_truth > 0
                   for result in suite.values())

    def test_all_live_engines_are_supported(self):
        assert set(LIVE_ENGINES) == {"exact", "sharded", "lowrank"}


class TestBatchReference:
    def test_matches_direct_batch_diagnosis(self, small_dataset, batch):
        # small_dataset is shorter than a week: one window, so the counts
        # must equal a direct full-window batch run.
        report = detect_network_anomalies(small_dataset.series)
        assert batch.windows == [(0, small_dataset.n_bins)]
        assert batch.total_events == report.n_events
        for label, count in report.label_counts().items():
            assert batch.label_counts[label] == count

    def test_aggregates_metrics_against_ground_truth(self, small_dataset,
                                                     batch):
        assert batch.metrics.n_ground_truth == len(small_dataset.ground_truth)
        assert 0.0 <= batch.metrics.false_alarm_rate <= 1.0
        assert batch.to_dict()["n_events"] == batch.total_events


class TestCompareBatchLive:
    def test_delta_structure(self, batch, live_result):
        delta = compare_batch_live(batch, live_result)
        data = delta.to_dict()
        assert data["engine"] == "exact"
        assert data["delta"]["n_events"] == (live_result.total_events
                                             - batch.total_events)
        parity = data["parity"]
        assert 0.0 <= parity["recall"] <= 1.0
        assert parity["span_recall"] >= parity["recall"]
        assert parity["n_batch"] == batch.total_events
        assert parity["n_streaming"] == live_result.total_events
        rendered = delta.render()
        assert "batch vs live" in rendered
        assert "event parity" in rendered

    def test_live_approximates_batch_on_stationary_data(self, batch,
                                                        live_result):
        delta = compare_batch_live(batch, live_result)
        # The live run loses at most the warmup region and grazing bins.
        assert delta.parity()["span_recall"] >= 0.5
        assert abs(delta.detection_rate_delta) <= 0.5

    def test_rejects_mismatched_windows(self, small_dataset, batch):
        drifting = generate_drifting_dataset(
            DatasetConfig(weeks=4.0 / 7.0), seed=3)
        other = run_live_evaluation(drifting, LIVE_CONFIG, chunk_size=48)
        with pytest.raises(ValueError, match="different windows"):
            compare_batch_live(batch, other)
