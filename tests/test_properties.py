"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.pca import EigenflowDecomposition
from repro.core.subspace import SubspaceModel
from repro.core.events import Detection, aggregate_detections
from repro.flows.timeseries import TrafficType
from repro.routing.prefixes import Prefix, PrefixTable, format_ipv4, parse_ipv4
from repro.utils.stats import q_statistic_threshold, t_squared_threshold
from repro.utils.timebins import TimeBinning

_SETTINGS = settings(max_examples=50, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])


# --------------------------------------------------------------------------- #
# IPv4 / prefix properties
# --------------------------------------------------------------------------- #
@_SETTINGS
@given(address=st.integers(min_value=0, max_value=2**32 - 1))
def test_ipv4_format_parse_roundtrip(address):
    assert parse_ipv4(format_ipv4(address)) == address


@_SETTINGS
@given(address=st.integers(min_value=0, max_value=2**32 - 1),
       length=st.integers(min_value=0, max_value=32))
def test_prefix_contains_its_own_network_and_broadcast(address, length):
    mask = (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF if length else 0
    prefix = Prefix(network=address & mask, length=length)
    assert prefix.contains(prefix.first_address)
    assert prefix.contains(prefix.last_address)
    assert prefix.last_address - prefix.first_address + 1 == prefix.n_addresses


@_SETTINGS
@given(address=st.integers(min_value=0, max_value=2**32 - 1),
       lengths=st.lists(st.integers(min_value=1, max_value=32), min_size=1,
                        max_size=6, unique=True))
def test_prefix_table_returns_most_specific_cover(address, lengths):
    """Longest-prefix match always returns the longest covering prefix."""
    table = PrefixTable()
    covering = []
    for length in lengths:
        mask = (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF
        prefix = Prefix(network=address & mask, length=length)
        table.insert(prefix, length)
        covering.append(length)
    assert table.lookup(address) == max(covering)


# --------------------------------------------------------------------------- #
# PCA / subspace properties
# --------------------------------------------------------------------------- #
_matrices = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(min_value=12, max_value=40),
                    st.integers(min_value=5, max_value=12)),
    elements=st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
                       allow_infinity=False),
)


@_SETTINGS
@given(matrix=_matrices)
def test_eigenvalues_nonnegative_and_sorted(matrix):
    decomposition = EigenflowDecomposition(matrix)
    eigenvalues = decomposition.eigenvalues
    assert np.all(eigenvalues >= -1e-8)
    assert np.all(np.diff(eigenvalues) <= 1e-8)


@_SETTINGS
@given(matrix=_matrices)
def test_total_variance_preserved(matrix):
    """Sum of eigenvalues equals the total variance of the data."""
    decomposition = EigenflowDecomposition(matrix)
    total_variance = np.var(matrix, axis=0, ddof=1).sum()
    assert decomposition.eigenvalues.sum() == pytest.approx(total_variance, rel=1e-6,
                                                            abs=1e-6)


@_SETTINGS
@given(matrix=_matrices, k=st.integers(min_value=1, max_value=4))
def test_subspace_split_is_exact_and_orthogonal(matrix, k):
    """x_hat + x_tilde reconstructs the centered data; parts are orthogonal;
    the SPE never exceeds the total centered energy."""
    decomposition = EigenflowDecomposition(matrix)
    if decomposition.rank <= k:
        return
    model = SubspaceModel(decomposition, n_normal=k)
    modeled, residual = model.split(matrix)
    centered = matrix - matrix.mean(axis=0)
    assert np.allclose(modeled + residual, centered, atol=1e-6)
    total_energy = np.sum(centered**2, axis=1)
    spe = model.spe(matrix)
    # Relative slack: the property holds exactly in real arithmetic, but at
    # energies of ~1e10 a few float64 ulps (~1e-5) can push the SPE above
    # the total, which a purely absolute 1e-6 tolerance rejected.
    assert np.all(spe <= total_energy * (1 + 1e-9) + 1e-6)


@_SETTINGS
@given(eigenvalues=st.lists(st.floats(min_value=1e-6, max_value=1e9,
                                      allow_nan=False), min_size=3, max_size=30),
       k=st.integers(min_value=1, max_value=5))
def test_q_threshold_nonnegative_and_monotone_in_confidence(eigenvalues, k):
    eigenvalues = np.sort(np.asarray(eigenvalues))[::-1]
    if k >= eigenvalues.size:
        return
    low = q_statistic_threshold(eigenvalues, k, confidence=0.95)
    high = q_statistic_threshold(eigenvalues, k, confidence=0.999)
    assert low >= 0.0
    assert high >= low - 1e-9


@_SETTINGS
@given(k=st.integers(min_value=1, max_value=10),
       n=st.integers(min_value=30, max_value=5000))
def test_t2_threshold_positive_and_grows_with_k(k, n):
    if n <= k + 1:
        return
    value = t_squared_threshold(k, n)
    assert value > 0
    if n > k + 2:
        assert t_squared_threshold(min(k + 1, n - 2), n) >= value * 0.5


# --------------------------------------------------------------------------- #
# Event aggregation properties
# --------------------------------------------------------------------------- #
_detections = st.lists(
    st.builds(
        Detection,
        traffic_type=st.sampled_from(list(TrafficType)),
        bin_index=st.integers(min_value=0, max_value=100),
        od_flows=st.lists(st.integers(min_value=0, max_value=20), min_size=1,
                          max_size=4, unique=True).map(tuple),
        statistic=st.sampled_from(["spe", "t2"]),
    ),
    max_size=40,
)


@_SETTINGS
@given(detections=_detections)
def test_events_cover_every_detection_exactly_once(detections):
    """Every detected (bin, flow) appears in exactly one aggregated event,
    events never overlap in time, and labels are canonical."""
    events = aggregate_detections(detections)

    detected_bins = {d.bin_index for d in detections}
    event_bins = [b for e in events for b in e.bins]
    assert sorted(event_bins) == sorted(detected_bins)          # no bin lost/duplicated

    for event in events:
        assert event.traffic_label in ("B", "F", "P", "BF", "BP", "FP", "BFP")
        assert event.bins == tuple(range(event.start_bin, event.end_bin + 1))

    for detection in detections:
        holders = [e for e in events if detection.bin_index in e.bins]
        assert len(holders) == 1
        assert set(detection.od_flows) <= holders[0].od_flows
        assert holders[0].involves_traffic_type(detection.traffic_type)


@_SETTINGS
@given(detections=_detections)
def test_aggregation_is_order_invariant(detections):
    forward = aggregate_detections(detections)
    backward = aggregate_detections(list(reversed(detections)))
    assert [(e.traffic_label, e.start_bin, e.end_bin, e.od_flows) for e in forward] == \
           [(e.traffic_label, e.start_bin, e.end_bin, e.od_flows) for e in backward]


# --------------------------------------------------------------------------- #
# Time binning properties
# --------------------------------------------------------------------------- #
@_SETTINGS
@given(n_bins=st.integers(min_value=1, max_value=5000),
       bin_seconds=st.sampled_from([60, 300, 600]),
       offset=st.floats(min_value=0, max_value=1, exclude_max=True))
def test_every_time_maps_to_exactly_one_bin(n_bins, bin_seconds, offset):
    binning = TimeBinning(n_bins=n_bins, bin_seconds=bin_seconds)
    time = offset * binning.duration_seconds
    bin_index = binning.bin_of(time)
    start, end = binning.bin_range(bin_index)
    assert start <= time < end
