"""Unit tests for IGP routing, BGP egress resolution, configs, and the resolver."""

import pytest

from repro.routing import (
    BGPTable,
    IGPRouting,
    PoPResolver,
    RoutingSnapshot,
    SnapshotSeries,
    anonymize_address,
    build_router_configs,
)
from repro.routing.config import ingress_prefix_table
from repro.routing.prefixes import parse_ipv4
from repro.flows.records import FiveTuple, FlowRecord
from repro.topology import TopologyBuilder


def _line_network():
    """A -- B -- C line topology with one customer per PoP."""
    return (TopologyBuilder("line")
            .add_pop("A").add_pop("B").add_pop("C")
            .connect("A", "B", weight=10).connect("B", "C", weight=10)
            .add_customer("ca", "A", prefixes=("10.1.0.0/16",))
            .add_customer("cb", "B", prefixes=("10.2.0.0/16",))
            .add_customer("cc", "C", prefixes=("10.3.0.0/16",), multihomed_pops=("A",))
            .build())


class TestIGPRouting:
    def test_shortest_path_follows_weights(self, abilene):
        igp = IGPRouting(abilene)
        path = igp.pop_path("SNVA", "LOSA")
        assert path == ["SNVA", "LOSA"]

    def test_multi_hop_path_endpoints(self, abilene):
        igp = IGPRouting(abilene)
        path = igp.pop_path("STTL", "ATLA")
        assert path[0] == "STTL" and path[-1] == "ATLA"
        assert len(path) >= 3

    def test_self_pair_path(self, abilene):
        igp = IGPRouting(abilene)
        assert igp.pop_path("CHIN", "CHIN") == ["CHIN"]
        assert igp.distance("CHIN", "CHIN") == 0.0

    def test_distance_symmetric_on_symmetric_topology(self, abilene):
        igp = IGPRouting(abilene)
        assert igp.distance("NYCM", "LOSA") == pytest.approx(
            igp.distance("LOSA", "NYCM"))

    def test_all_pairs_reachable(self, abilene):
        igp = IGPRouting(abilene)
        for origin in abilene.pop_names:
            for destination in abilene.pop_names:
                assert igp.is_reachable(origin, destination)

    def test_failed_pop_unreachable(self):
        net = _line_network()
        igp = IGPRouting(net, failed_pops=["B"])
        assert not igp.is_reachable("A", "C")
        assert igp.pop_path("A", "C") == []
        assert igp.distance("A", "C") == float("inf")

    def test_failed_link_reroutes_or_disconnects(self, abilene):
        healthy = IGPRouting(abilene)
        broken = healthy.with_failures(failed_links=[("SNVA-rtr", "LOSA-rtr")])
        path = broken.pop_path("SNVA", "LOSA")
        # SNVA can still reach LOSA the long way (via STTL/DNVR/... or HSTN).
        assert path[0] == "SNVA" and path[-1] == "LOSA"
        assert len(path) > 2

    def test_closest_pop_hot_potato(self, abilene):
        igp = IGPRouting(abilene)
        # From Seattle, Sunnyvale is closer than New York.
        assert igp.closest_pop(["SNVA", "NYCM"], "STTL") == "SNVA"

    def test_next_hop(self):
        net = _line_network()
        igp = IGPRouting(net)
        assert igp.next_hop("A", "C") == "B"
        assert igp.next_hop("A", "A") is None


class TestBGPTable:
    def test_from_customers_covers_customer_prefixes(self):
        net = _line_network()
        table = BGPTable.from_customers(net)
        route = table.lookup(parse_ipv4("10.2.5.5"))
        assert route is not None
        assert route.egress_pops == ("B",)

    def test_lookup_miss(self):
        net = _line_network()
        table = BGPTable.from_customers(net)
        assert table.lookup(parse_ipv4("203.0.113.1")) is None

    def test_multihomed_prefix_hot_potato(self):
        net = _line_network()
        table = BGPTable.from_customers(net)
        igp = IGPRouting(net)
        address = parse_ipv4("10.3.1.1")  # cc is homed at C, multihomed to A
        assert table.egress_pop(address, ingress_pop="A", igp=igp) == "A"
        assert table.egress_pop(address, ingress_pop="C", igp=igp) == "C"

    def test_announce_validates_pop(self):
        net = _line_network()
        table = BGPTable(net)
        with pytest.raises(KeyError):
            table.announce("10.9.0.0/16", ["NOPE"])

    def test_coverage_fraction(self):
        net = _line_network()
        table = BGPTable.from_customers(net)
        covered = parse_ipv4("10.1.0.1")
        uncovered = parse_ipv4("198.51.100.1")
        assert table.coverage_fraction([covered, uncovered]) == pytest.approx(0.5)


class TestRouterConfigs:
    def test_every_customer_gets_an_interface(self, abilene):
        configs = build_router_configs(abilene)
        customers_with_interfaces = {
            interface.customer
            for config in configs.values()
            for interface in config.interfaces
        }
        assert customers_with_interfaces == {c.name for c in abilene.customers}

    def test_multihomed_customer_appears_at_both_pops(self, abilene):
        configs = build_router_configs(abilene)
        pops_with_calren = {
            config.pop for config in configs.values()
            if any(i.customer == "CALREN" for i in config.interfaces)
        }
        assert pops_with_calren == {"LOSA", "SNVA"}

    def test_render_contains_interfaces(self):
        net = _line_network()
        configs = build_router_configs(net)
        text = configs["A-rtr"].render()
        assert "ca" in text and "10.1.0.0/16" in text

    def test_ingress_prefix_table_primary_attachment_wins(self):
        net = _line_network()
        configs = build_router_configs(net)
        table = ingress_prefix_table(configs.values(), net)
        # cc's prefix is configured at C (primary) and A (multihomed);
        # the primary attachment should win.
        assert table.lookup(parse_ipv4("10.3.0.1")) == "C"


class TestAnonymization:
    def test_zeroes_low_bits(self):
        address = parse_ipv4("10.1.2.255")
        anonymized = anonymize_address(address, bits=11)
        assert anonymized & ((1 << 11) - 1) == 0
        assert anonymized <= address

    def test_zero_bits_is_identity(self):
        address = parse_ipv4("10.1.2.3")
        assert anonymize_address(address, bits=0) == address


class TestPoPResolver:
    def _record(self, src, dst, router=None):
        key = FiveTuple(src_address=parse_ipv4(src), dst_address=parse_ipv4(dst),
                        src_port=1234, dst_port=80, protocol=6)
        return FlowRecord(key=key, start_time=0, end_time=10, bytes=1000, packets=10,
                          observing_router=router)

    def test_resolves_by_addresses(self):
        net = _line_network()
        resolver = PoPResolver(net)
        assert resolver.resolve(parse_ipv4("10.1.0.5"), parse_ipv4("10.2.0.9")) == ("A", "B")

    def test_observing_router_sets_ingress(self):
        net = _line_network()
        resolver = PoPResolver(net)
        ingress = resolver.resolve_ingress(parse_ipv4("203.0.113.1"),
                                           observing_router="B-rtr")
        assert ingress == "B"

    def test_unknown_source_fails_ingress(self):
        net = _line_network()
        resolver = PoPResolver(net)
        assert resolver.resolve_ingress(parse_ipv4("203.0.113.1")) is None

    def test_unknown_destination_fails_egress(self):
        net = _line_network()
        resolver = PoPResolver(net)
        assert resolver.resolve_egress(parse_ipv4("203.0.113.1")) is None

    def test_anonymization_does_not_break_resolution(self):
        # Customer prefixes are /16, much shorter than the 11 anonymized
        # bits, so egress resolution still succeeds — the paper's argument.
        net = _line_network()
        resolver = PoPResolver(net)
        assert resolver.resolve_egress(parse_ipv4("10.3.255.255")) == "C"

    def test_resolve_records_statistics(self):
        net = _line_network()
        resolver = PoPResolver(net)
        records = [
            self._record("10.1.0.1", "10.2.0.1"),
            self._record("10.2.0.1", "10.3.0.1"),
            self._record("203.0.113.5", "10.2.0.1"),   # unresolvable ingress
        ]
        resolved, stats = resolver.resolve_records(records)
        assert len(resolved) == 2
        assert stats.total_flows == 3
        assert stats.resolved_flows == 2
        assert stats.unresolved_ingress == 1
        assert 0.6 < stats.flow_resolution_rate < 0.7
        assert all(r.od_pair is not None for r in resolved)


class TestSnapshotSeries:
    def test_default_snapshot_everywhere(self, abilene):
        series = SnapshotSeries(abilene, n_days=3)
        snapshot = series.snapshot_for_day(1)
        assert isinstance(snapshot, RoutingSnapshot)
        assert snapshot.failed_pops == ()

    def test_apply_failure_only_affects_that_day(self, abilene):
        series = SnapshotSeries(abilene, n_days=3)
        series.apply_failure(1, failed_pops=["LOSA"])
        assert series.snapshot_for_day(0).failed_pops == ()
        assert series.snapshot_for_day(1).failed_pops == ("LOSA",)
        assert not series.snapshot_for_day(1).igp.is_reachable("LOSA", "NYCM")
        assert series.days_with_failures() == [1]

    def test_day_of_and_time_lookup(self, abilene):
        series = SnapshotSeries(abilene, n_days=2, start_seconds=0)
        assert series.day_of(10) == 0
        assert series.day_of(86_400 + 5) == 1
        with pytest.raises(ValueError):
            series.day_of(3 * 86_400)

    def test_out_of_range_day(self, abilene):
        series = SnapshotSeries(abilene, n_days=2)
        with pytest.raises(ValueError):
            series.snapshot_for_day(5)
