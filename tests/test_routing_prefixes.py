"""Unit tests for IPv4 prefix arithmetic and longest-prefix matching."""

import pytest

from repro.routing.prefixes import (
    Prefix,
    PrefixTable,
    format_ipv4,
    parse_ipv4,
    random_address_in_prefix,
)


class TestAddressParsing:
    @pytest.mark.parametrize("text,value", [
        ("0.0.0.0", 0),
        ("255.255.255.255", 2**32 - 1),
        ("10.0.0.1", (10 << 24) + 1),
        ("192.168.1.2", (192 << 24) + (168 << 16) + (1 << 8) + 2),
    ])
    def test_parse_known_values(self, text, value):
        assert parse_ipv4(text) == value

    def test_roundtrip(self):
        for text in ("1.2.3.4", "10.32.0.0", "203.0.113.7"):
            assert format_ipv4(parse_ipv4(text)) == text

    @pytest.mark.parametrize("bad", ["1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", ""])
    def test_parse_rejects_invalid(self, bad):
        with pytest.raises(ValueError):
            parse_ipv4(bad)

    def test_format_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            format_ipv4(2**32)


class TestPrefix:
    def test_parse_and_str_roundtrip(self):
        prefix = Prefix.parse("10.32.0.0/16")
        assert str(prefix) == "10.32.0.0/16"
        assert prefix.length == 16
        assert prefix.n_addresses == 65536

    def test_bare_address_is_slash_32(self):
        prefix = Prefix.parse("1.2.3.4")
        assert prefix.length == 32
        assert prefix.n_addresses == 1

    def test_contains(self):
        prefix = Prefix.parse("10.32.0.0/16")
        assert prefix.contains(parse_ipv4("10.32.255.255"))
        assert not prefix.contains(parse_ipv4("10.33.0.0"))

    def test_rejects_host_bits_set(self):
        with pytest.raises(ValueError):
            Prefix(network=parse_ipv4("10.0.0.1"), length=24)

    def test_first_and_last_address(self):
        prefix = Prefix.parse("192.168.4.0/22")
        assert format_ipv4(prefix.first_address) == "192.168.4.0"
        assert format_ipv4(prefix.last_address) == "192.168.7.255"

    def test_subnets(self):
        prefix = Prefix.parse("10.0.0.0/14")
        subnets = prefix.subnets(16)
        assert len(subnets) == 4
        assert str(subnets[0]) == "10.0.0.0/16"
        assert str(subnets[-1]) == "10.3.0.0/16"

    def test_subnets_rejects_shorter_length(self):
        with pytest.raises(ValueError):
            Prefix.parse("10.0.0.0/16").subnets(8)

    def test_zero_length_prefix_covers_everything(self):
        default = Prefix.parse("0.0.0.0/0")
        assert default.contains(parse_ipv4("203.0.113.1"))
        assert default.n_addresses == 2**32


class TestRandomAddressInPrefix:
    def test_always_inside(self, rng):
        prefix = Prefix.parse("172.16.8.0/21")
        for _ in range(100):
            assert prefix.contains(random_address_in_prefix(prefix, rng))

    def test_deterministic_with_seed(self):
        prefix = Prefix.parse("10.0.0.0/8")
        assert (random_address_in_prefix(prefix, 3)
                == random_address_in_prefix(prefix, 3))


class TestPrefixTable:
    def test_longest_prefix_match_wins(self):
        table = PrefixTable()
        table.insert_str("10.0.0.0/8", "coarse")
        table.insert_str("10.32.0.0/16", "fine")
        assert table.lookup(parse_ipv4("10.32.1.1")) == "fine"
        assert table.lookup(parse_ipv4("10.33.1.1")) == "coarse"

    def test_lookup_miss_returns_none(self):
        table = PrefixTable()
        table.insert_str("10.0.0.0/8", "a")
        assert table.lookup(parse_ipv4("11.0.0.1")) is None

    def test_default_route(self):
        table = PrefixTable()
        table.insert_str("0.0.0.0/0", "default")
        table.insert_str("10.0.0.0/8", "ten")
        assert table.lookup(parse_ipv4("200.1.2.3")) == "default"
        assert table.lookup(parse_ipv4("10.1.2.3")) == "ten"

    def test_replacement_of_existing_prefix(self):
        table = PrefixTable()
        table.insert_str("10.0.0.0/8", "old")
        table.insert_str("10.0.0.0/8", "new")
        assert table.lookup(parse_ipv4("10.1.1.1")) == "new"
        assert len(table) == 1

    def test_covers_and_prefixes(self):
        table = PrefixTable()
        table.insert_str("10.0.0.0/8", 1)
        assert table.covers(parse_ipv4("10.200.0.1"))
        assert not table.covers(parse_ipv4("11.0.0.1"))
        assert [str(p) for p in table.prefixes()] == ["10.0.0.0/8"]

    def test_lookup_prefix_returns_matching_prefix(self):
        table = PrefixTable()
        table.insert_str("10.0.0.0/8", "a")
        table.insert_str("10.1.0.0/16", "b")
        match = table.lookup_prefix(parse_ipv4("10.1.2.3"))
        assert match is not None
        prefix, value = match
        assert str(prefix) == "10.1.0.0/16"
        assert value == "b"

    def test_iteration_yields_entries(self):
        table = PrefixTable()
        table.insert_str("10.0.0.0/8", "a")
        table.insert_str("192.168.0.0/16", "b")
        assert dict((str(p), v) for p, v in table) == {
            "10.0.0.0/8": "a", "192.168.0.0/16": "b"}

    def test_slash32_exact_match(self):
        table = PrefixTable()
        table.insert_str("10.0.0.5/32", "host")
        assert table.lookup(parse_ipv4("10.0.0.5")) == "host"
        assert table.lookup(parse_ipv4("10.0.0.6")) is None
