"""HTTP status-surface tests: every endpoint, on an ephemeral port."""

import importlib.util
import json
import threading
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.core.events import AnomalyEvent
from repro.service import EventStore
from repro.telemetry import HealthSnapshot, MetricsRegistry

TOOLS = Path(__file__).resolve().parent.parent / "tools"


def _load_tool(name):
    spec = importlib.util.spec_from_file_location(name, TOOLS / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


serve_status = _load_tool("serve_status")


def _event(label="BFP", start=10, end=12, flows=(3, 1, 7)):
    return AnomalyEvent(
        traffic_label=label,
        start_bin=start,
        end_bin=end,
        od_flows=frozenset(flows),
        bins=tuple(range(start, end + 1)),
        statistics=frozenset(("spe", "t2")),
    )


def _write_snapshot(path):
    registry = MetricsRegistry()
    registry.counter("bins_processed").inc(96)
    registry.counter("chunks_processed").inc(2)
    registry.counter("events", {"type": "BFP"}).inc()
    registry.gauge("runtime_seconds").set(1.5)
    HealthSnapshot.from_registry(registry).write(str(path))


@pytest.fixture()
def served(tmp_path):
    """A bound server over a populated snapshot + store; yields its URL."""
    snapshot_path = tmp_path / "health.json"
    store_path = tmp_path / "events.sqlite"
    _write_snapshot(snapshot_path)
    with EventStore(store_path) as store:
        store.add_events([
            _event(label="B", start=0, end=1),
            _event(label="BF", start=5, end=6),
            _event(label="BFP", start=10, end=12),
        ])
    server = serve_status.make_server("127.0.0.1", 0, str(snapshot_path),
                                      str(store_path))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield f"http://{host}:{port}"
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def _get(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, response.headers["Content-Type"], \
            response.read().decode("utf-8")


class TestEndpoints:
    def test_index_lists_endpoints(self, served):
        status, content_type, body = _get(served + "/")
        assert status == 200
        assert "json" in content_type
        assert "/events" in json.loads(body)["endpoints"]

    def test_health_returns_snapshot_json(self, served):
        _, _, body = _get(served + "/health")
        snapshot = json.loads(body)
        assert snapshot["bins_processed"] == 96
        assert snapshot["events_by_type"] == {"BFP": 1}

    def test_status_renders_operator_table(self, served):
        _, content_type, body = _get(served + "/status")
        assert content_type.startswith("text/plain")
        assert "bins processed" in body

    def test_metrics_is_prometheus_text(self, served):
        _, content_type, body = _get(served + "/metrics")
        assert "version=0.0.4" in content_type
        assert "repro_bins_processed_total 96" in body

    def test_events_returns_rows(self, served):
        _, _, body = _get(served + "/events")
        payload = json.loads(body)
        assert payload["n_returned"] == 3
        assert [e["traffic_label"] for e in payload["events"]] \
            == ["B", "BF", "BFP"]

    def test_events_filters_apply(self, served):
        _, _, body = _get(served + "/events?label=BF&limit=5")
        payload = json.loads(body)
        assert [e["traffic_label"] for e in payload["events"]] == ["BF"]
        _, _, body = _get(served + "/events?start_bin=9")
        assert json.loads(body)["n_returned"] == 1

    def test_summary_includes_digest(self, served, tmp_path):
        _, _, body = _get(served + "/summary")
        payload = json.loads(body)
        assert payload["count"] == 3
        with EventStore(tmp_path / "events.sqlite") as store:
            assert payload["table_digest"] == store.table_digest()

    def test_unknown_route_404s(self, served):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(served + "/nope")
        assert excinfo.value.code == 404

    def test_bad_query_400s(self, served):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(served + "/events?limit=banana")
        assert excinfo.value.code == 400


class TestDegradedModes:
    def test_missing_snapshot_is_503_not_crash(self, tmp_path):
        server = serve_status.make_server("127.0.0.1", 0,
                                          str(tmp_path / "absent.json"), "")
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        try:
            for route in ("/health", "/status", "/metrics"):
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    _get(f"http://{host}:{port}{route}")
                assert excinfo.value.code == 503
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(f"http://{host}:{port}/events")
            assert excinfo.value.code == 503  # no store configured
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_torn_snapshot_is_503_and_recovers(self, tmp_path):
        snapshot_path = tmp_path / "health.json"
        snapshot_path.write_text('{"version": 1, "bins_')  # torn write
        server = serve_status.make_server("127.0.0.1", 0, str(snapshot_path),
                                          "")
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(f"http://{host}:{port}/health")
            assert excinfo.value.code == 503
            _write_snapshot(snapshot_path)  # the atomic writer catches up
            status, _, _ = _get(f"http://{host}:{port}/health")
            assert status == 200
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)


class TestCli:
    def test_requires_something_to_serve(self, capsys):
        assert serve_status.main([]) == 2
        assert "nothing to serve" in capsys.readouterr().err
