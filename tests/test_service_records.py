"""Deterministic service records: keys, classification, roll-ups."""

import pytest

from repro.core.events import AnomalyEvent
from repro.service import (SEVERITY_LEVELS, EventRecord, classify_event,
                           event_key, od_digest, summarize_records)


def _event(label="BFP", start=10, end=12, flows=(3, 1, 7),
           statistics=("spe", "t2")):
    return AnomalyEvent(
        traffic_label=label,
        start_bin=start,
        end_bin=end,
        od_flows=frozenset(flows),
        bins=tuple(range(start, end + 1)),
        statistics=frozenset(statistics),
    )


class TestKeys:
    def test_od_digest_is_order_insensitive(self):
        assert od_digest([3, 1, 7]) == od_digest((7, 3, 1))
        assert od_digest([3, 1, 7]) != od_digest([3, 1, 8])

    def test_event_key_ignores_end_bin(self):
        short = _event(end=12)
        extended = _event(end=20)
        assert event_key(short) == event_key(extended)

    def test_event_key_separates_label_start_and_flows(self):
        base = _event()
        assert event_key(base) != event_key(_event(label="B"))
        assert event_key(base) != event_key(_event(start=11))
        assert event_key(base) != event_key(_event(flows=(1, 2)))


class TestClassification:
    def test_record_is_pure_function_of_event(self):
        assert classify_event(_event()) == classify_event(_event())

    def test_three_type_events_are_critical(self):
        record = classify_event(_event(label="BFP"))
        assert record.severity == "critical"

    def test_single_type_short_events_are_info(self):
        record = classify_event(_event(label="B", start=10, end=10,
                                       flows=(1,), statistics=("spe",)))
        assert record.severity == "info"
        assert record.confidence == pytest.approx(0.50)

    def test_corroboration_raises_confidence(self):
        single = classify_event(_event(label="B"))
        double = classify_event(_event(label="BF"))
        triple = classify_event(_event(label="BFP"))
        assert single.confidence < double.confidence < triple.confidence

    def test_confidence_capped_and_bounded(self):
        record = classify_event(_event(label="BFP", start=0, end=40,
                                       flows=tuple(range(12))))
        assert record.confidence <= 0.99
        assert record.severity in SEVERITY_LEVELS

    def test_summary_mentions_span_and_flows(self):
        record = classify_event(_event(label="BF", start=10, end=12))
        assert "BF" in record.summary
        assert "10-12" in record.summary
        assert "3 OD flows" in record.summary

    def test_to_dict_is_json_friendly(self):
        data = classify_event(_event()).to_dict()
        assert data["key"] == event_key(_event())
        assert isinstance(data["od_flows"], list)
        assert data["od_flows"] == sorted(data["od_flows"])

    def test_invalid_severity_rejected(self):
        record = classify_event(_event())
        with pytest.raises(ValueError):
            EventRecord(**{**record.__dict__, "severity": "meltdown"})

    def test_invalid_confidence_rejected(self):
        record = classify_event(_event())
        with pytest.raises(ValueError):
            EventRecord(**{**record.__dict__, "confidence": 1.5})


class TestRunSummary:
    def test_empty_summary(self):
        summary = summarize_records([])
        assert summary.total_events == 0
        assert summary.mean_confidence == 0.0
        assert summary.max_end_bin is None

    def test_folds_counts_and_confidence(self):
        records = [classify_event(_event(label="B", start=1, end=2,
                                         statistics=("spe",))).to_dict(),
                   classify_event(_event(label="BFP", start=5,
                                         end=9)).to_dict()]
        summary = summarize_records(records)
        assert summary.total_events == 2
        assert summary.events_by_label["B"] == 1
        assert summary.events_by_label["BFP"] == 1
        assert summary.events_by_severity["critical"] == 1
        assert summary.max_end_bin == 9
        assert 0.0 < summary.mean_confidence <= 0.99
        assert summary.to_dict()["total_events"] == 2
