"""Detection-service tests: graceful SIGTERM, restart parity, alert dedup.

The acceptance property of the service layer: a run SIGTERMed mid-stream
and restarted from its checkpoint must end with the **byte-identical**
event table an uninterrupted run over the Abilene week produces — and must
never alert twice for the same event across the restart.
"""

import json
import signal

import pytest

from repro.datasets.streaming import synthetic_chunk_stream
from repro.datasets.synthetic import DatasetConfig
from repro.service import (AlertDispatcher, AlertSink, DetectionService,
                           EventStore)
from repro.service.runner import main as service_main
from repro.streaming import StreamingConfig

CHUNK = 48
SEED = 7
WEEK_BLOCKS = 7  # one-day blocks -> the Abilene week


@pytest.fixture(scope="module")
def service_config():
    return StreamingConfig(min_train_bins=256, recalibrate_every_bins=48)


@pytest.fixture(scope="module")
def week_chunks():
    """The synthetic Abilene week, materialized once per module."""
    return list(synthetic_chunk_stream(
        chunk_size=CHUNK,
        block_config=DatasetConfig(weeks=1.0 / 7.0),
        seed=SEED,
        max_blocks=WEEK_BLOCKS,
    ))


class ListSink(AlertSink):
    name = "list"

    def __init__(self):
        self.payloads = []

    def emit(self, payload):
        self.payloads.append(payload)

    @property
    def keys(self):
        return [p["key"] for p in self.payloads]


def _service(config, tmp_path, name="run", checkpoint=True, **kwargs):
    sink = ListSink()
    store = EventStore(tmp_path / f"{name}.sqlite")
    service = DetectionService(
        config,
        store=store,
        dispatcher=AlertDispatcher([sink]),
        checkpoint_dir=(tmp_path / f"{name}-ckpt") if checkpoint else None,
        **kwargs,
    )
    return service, store, sink


@pytest.fixture(scope="module")
def reference(service_config, week_chunks, tmp_path_factory):
    """Uninterrupted run over the week: digest, rows, and alert keys."""
    tmp_path = tmp_path_factory.mktemp("reference")
    service, store, sink = _service(service_config, tmp_path,
                                    checkpoint=False)
    result = service.run(iter(week_chunks))
    assert not result.interrupted
    assert result.events_stored > 0
    reference = {
        "digest": store.table_digest(),
        "rows": store.canonical_rows(),
        "alert_keys": list(sink.keys),
        "n_events": store.count(),
    }
    service.close()
    return reference


def _sigterm_after(chunks, n_chunks):
    """Yield chunks, raising a real SIGTERM in-process after the n-th."""
    for index, chunk in enumerate(chunks, start=1):
        yield chunk
        if index == n_chunks:
            signal.raise_signal(signal.SIGTERM)


class TestGracefulRestart:
    def test_sigterm_then_restart_is_byte_identical(
            self, service_config, week_chunks, reference, tmp_path):
        # --- first run: SIGTERM lands mid-stream --------------------- #
        service, store, sink = _service(service_config, tmp_path)
        service.install_signal_handlers()
        result = service.run(_sigterm_after(iter(week_chunks), 18))
        assert result.interrupted
        # The signal landed while chunk 19 was in flight: that chunk was
        # finished — not dropped — before the loop stopped.
        assert service.resume_bin == 19 * CHUNK
        assert store.count() < reference["n_events"]
        first_keys = list(sink.keys)
        store.close()

        # --- restart: resume from the checkpoint, feed the suffix ---- #
        resumed, reopened, resumed_sink = _service(service_config, tmp_path)
        assert resumed.resume_bin == 19 * CHUNK
        suffix = (c for c in week_chunks if c.start_bin >= resumed.resume_bin)
        final = resumed.run(suffix)
        assert not final.interrupted

        # Byte-identical event table, exactly as if never interrupted.
        assert reopened.canonical_rows() == reference["rows"]
        assert reopened.table_digest() == reference["digest"]
        # Never re-paged: the two runs' alerts partition the reference set.
        assert not set(first_keys) & set(resumed_sink.keys)
        assert sorted(first_keys + resumed_sink.keys) \
            == sorted(reference["alert_keys"])
        resumed.close()

    def test_crash_replay_is_absorbed(self, service_config, week_chunks,
                                      reference, tmp_path):
        """A hard crash (no graceful checkpoint) replays chunks since the
        last periodic checkpoint; the idempotent store absorbs them."""
        service, store, _ = _service(service_config, tmp_path,
                                     checkpoint_every_chunks=4)

        class Crash(RuntimeError):
            pass

        def crashing(chunks, after):
            for index, chunk in enumerate(chunks, start=1):
                yield chunk
                if index == after:
                    raise Crash("simulated power loss")

        with pytest.raises(Crash):
            service.run(crashing(iter(week_chunks), 23))
        store.close()

        # Restart resumes at the periodic checkpoint (chunk 20), replaying
        # chunks 21-23 whose events are already stored.
        resumed, reopened, resumed_sink = _service(service_config, tmp_path)
        assert resumed.resume_bin == 20 * CHUNK
        suffix = (c for c in week_chunks if c.start_bin >= resumed.resume_bin)
        final = resumed.run(suffix)
        assert final.events_duplicate > 0  # the replay really happened
        assert reopened.table_digest() == reference["digest"]
        # Replayed events were already alerted before the crash.
        assert len(set(resumed_sink.keys)) == len(resumed_sink.keys)
        resumed.close()

    def test_restored_finished_run_is_a_noop(self, service_config,
                                             week_chunks, tmp_path):
        service, store, _ = _service(service_config, tmp_path)
        service.run(iter(week_chunks[:12]))  # runs finish() at exhaustion
        digest = store.table_digest()
        store.close()

        again, reopened, sink = _service(service_config, tmp_path)
        assert again.detector.finished
        result = again.run(iter(week_chunks[12:]))  # ignored: run is sealed
        assert result.events_stored == 0
        assert sink.payloads == []
        assert reopened.table_digest() == digest
        again.close()


class TestRunLoopContracts:
    def test_resume_misalignment_rejected(self, service_config, week_chunks,
                                          tmp_path):
        service, _, _ = _service(service_config, tmp_path)
        with pytest.raises(ValueError, match="resume misalignment"):
            service.run(iter(week_chunks[3:]))
        service.close()

    def test_signal_handlers_restored_after_run(self, service_config,
                                                week_chunks, tmp_path):
        before = signal.getsignal(signal.SIGTERM)
        service, _, _ = _service(service_config, tmp_path, checkpoint=False)
        service.install_signal_handlers()
        assert signal.getsignal(signal.SIGTERM) != before
        service.run(iter(week_chunks[:3]))
        assert signal.getsignal(signal.SIGTERM) == before
        service.close()

    def test_stop_flag_breaks_between_chunks(self, service_config,
                                             week_chunks, tmp_path):
        service, _, _ = _service(service_config, tmp_path)

        def stopping(chunks):
            for index, chunk in enumerate(chunks, start=1):
                yield chunk
                if index == 2:
                    service.request_stop()

        result = service.run(stopping(iter(week_chunks)))
        assert result.interrupted
        # The stop was requested while chunk 3 was being pulled; it still
        # completes before the loop breaks.
        assert service.resume_bin == 3 * CHUNK
        service.close()

    def test_stop_signal_counter_increments(self, service_config,
                                            week_chunks, tmp_path):
        service, _, _ = _service(service_config, tmp_path, checkpoint=False)
        service.install_signal_handlers()
        service.run(_sigterm_after(iter(week_chunks[:4]), 2))
        assert service.registry.value(
            "service_stop_signals", {"signal": "SIGTERM"}) == 1
        service.close()

    def test_periodic_checkpoint_needs_directory(self, service_config):
        with pytest.raises(ValueError, match="checkpoint_dir"):
            DetectionService(service_config, checkpoint_every_chunks=4)
        with pytest.raises(ValueError, match=">= 1"):
            DetectionService(service_config, checkpoint_dir="somewhere",
                             checkpoint_every_chunks=0)

    def test_events_flow_through_pipeline_hook(self, service_config,
                                               week_chunks, tmp_path):
        """Everything the pipeline reports — including the end-of-stream
        tail — lands in the store via the on_events hand-off."""
        service, store, sink = _service(service_config, tmp_path,
                                        checkpoint=False)
        result = service.run(iter(week_chunks))
        stored_keys = {e.event_key for e in store.query()}
        assert len(stored_keys) == result.report.n_events
        assert sorted(sink.keys) == sorted(stored_keys)
        service.close()


class TestServiceCli:
    def test_cli_runs_and_resumes_idempotently(self, tmp_path, capsys):
        argv = ["--store", str(tmp_path / "events.sqlite"),
                "--checkpoint", str(tmp_path / "ckpt"),
                "--days", "2", "--chunk-size", str(CHUNK),
                "--seed", str(SEED),
                "--alerts", str(tmp_path / "alerts.jsonl"),
                "--dead-letter", str(tmp_path / "dead.jsonl"),
                "--snapshot", str(tmp_path / "health.json")]
        assert service_main(argv) == 0
        first = json.loads(capsys.readouterr().out.splitlines()[-1])
        assert first["interrupted"] is False
        assert first["events_stored"] > 0
        assert (tmp_path / "health.json").is_file()
        alert_lines = (tmp_path / "alerts.jsonl").read_text().splitlines()
        assert len(alert_lines) == first["events_stored"]
        assert not (tmp_path / "dead.jsonl").exists()

        # Second invocation restores a finished run: nothing new happens
        # and the table digest is unchanged.
        assert service_main(argv) == 0
        second = json.loads(capsys.readouterr().out.splitlines()[-1])
        assert second["events_stored"] == 0
        assert second["table_digest"] == first["table_digest"]

    def test_cli_ingests_csv_flow_records(self, clean_series, abilene,
                                          tmp_path, capsys):
        from repro.ingest import export_series_records

        csv_path = tmp_path / "flows.csv"
        export_series_records(clean_series.window(0, 192), abilene,
                              str(csv_path), seed=3, max_flows_per_cell=2)
        argv = ["--store", str(tmp_path / "events.sqlite"),
                "--ingest-csv", str(csv_path),
                "--chunk-size", "48",
                "--min-train-bins", "96",
                "--recalibrate-every-bins", "48"]
        assert service_main(argv) == 0
        payload = json.loads(capsys.readouterr().out.splitlines()[-1])
        assert payload["interrupted"] is False
        assert payload["n_bins_processed"] == 192
