"""Alert-delivery tests: retry/backoff/jitter, dedup, dead-letter, metrics."""

import io
import json

import pytest

from repro.core.events import AnomalyEvent
from repro.service import (AlertDispatcher, AlertSink, JsonLinesAlertSink,
                           StdoutSink, WebhookSink, classify_event)
from repro.telemetry import MetricsRegistry


def _event(label="BFP", start=10, end=12, flows=(3, 1, 7)):
    return AnomalyEvent(
        traffic_label=label,
        start_bin=start,
        end_bin=end,
        od_flows=frozenset(flows),
        bins=tuple(range(start, end + 1)),
        statistics=frozenset(("spe", "t2")),
    )


class RecordingSink(AlertSink):
    """Delivers after a scripted number of failures; records payloads."""

    name = "recording"

    def __init__(self, fail_first=0):
        self.fail_first = fail_first
        self.attempts = 0
        self.delivered = []
        self.closed = False

    def emit(self, payload):
        self.attempts += 1
        if self.attempts <= self.fail_first:
            raise ConnectionError(f"scripted failure {self.attempts}")
        self.delivered.append(payload)

    def close(self):
        self.closed = True


class SleepRecorder:
    def __init__(self):
        self.sleeps = []

    def __call__(self, seconds):
        self.sleeps.append(seconds)


class TestSinks:
    def test_stdout_sink_writes_one_json_line(self):
        stream = io.StringIO()
        StdoutSink(stream).emit({"B": 2, "a": 1})
        assert json.loads(stream.getvalue()) == {"a": 1, "B": 2}
        assert stream.getvalue().count("\n") == 1

    def test_jsonl_sink_appends_lines(self, tmp_path):
        path = tmp_path / "alerts" / "out.jsonl"
        sink = JsonLinesAlertSink(str(path))
        sink.emit({"n": 1})
        sink.emit({"n": 2})
        sink.close()
        lines = path.read_text().splitlines()
        assert [json.loads(line)["n"] for line in lines] == [1, 2]
        sink.close()  # idempotent

    def test_webhook_default_transport_posts_json(self, monkeypatch):
        seen = {}

        class FakeResponse:
            status = 200

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

            def getcode(self):
                return self.status

        def fake_urlopen(request, timeout=None):
            seen["url"] = request.full_url
            seen["method"] = request.get_method()
            seen["body"] = request.data
            seen["content_type"] = request.get_header("Content-type")
            seen["timeout"] = timeout
            return FakeResponse()

        monkeypatch.setattr("urllib.request.urlopen", fake_urlopen)
        sink = WebhookSink("http://example.invalid/hook", timeout=2.5)
        sink.emit({"n": 1})
        assert seen["url"] == "http://example.invalid/hook"
        assert seen["method"] == "POST"
        assert json.loads(seen["body"].decode()) == {"n": 1}
        assert seen["content_type"] == "application/json"
        assert seen["timeout"] == 2.5

    def test_webhook_non_2xx_raises_retryable_error(self, monkeypatch):
        import urllib.error

        def fake_urlopen(request, timeout=None):
            raise urllib.error.HTTPError(
                request.full_url, 503, "unavailable", hdrs=None, fp=None)

        monkeypatch.setattr("urllib.request.urlopen", fake_urlopen)
        with pytest.raises(RuntimeError, match="HTTP 503"):
            WebhookSink("http://example.invalid/hook").emit({"n": 1})

    def test_webhook_connection_failure_raises_retryable_error(
            self, monkeypatch):
        import urllib.error

        def fake_urlopen(request, timeout=None):
            raise urllib.error.URLError("connection refused")

        monkeypatch.setattr("urllib.request.urlopen", fake_urlopen)
        with pytest.raises(RuntimeError, match="failed"):
            WebhookSink("http://example.invalid/hook").emit({"n": 1})

    def test_webhook_rejects_bad_timeout(self):
        with pytest.raises(ValueError):
            WebhookSink("http://example.invalid/hook", timeout=0.0)

    def test_webhook_uses_injected_transport(self):
        posts = []
        sink = WebhookSink("http://example.invalid/hook",
                           transport=lambda url, body: posts.append(
                               (url, body)))
        sink.emit({"n": 1})
        (url, body), = posts
        assert url == "http://example.invalid/hook"
        assert json.loads(body.decode()) == {"n": 1}

    def test_webhook_needs_url(self):
        with pytest.raises(ValueError):
            WebhookSink("")


class TestRetryAndBackoff:
    def test_transient_failure_retries_then_delivers(self):
        sink = RecordingSink(fail_first=2)
        sleeper = SleepRecorder()
        dispatcher = AlertDispatcher([sink], max_attempts=3, sleep=sleeper)
        assert dispatcher.dispatch(_event()) is True
        assert len(sink.delivered) == 1
        assert len(sleeper.sleeps) == 2
        registry = dispatcher.registry
        assert registry.value("alert_retries", {"sink": "recording"}) == 2
        assert registry.value("alerts_sent", {"sink": "recording"}) == 1

    def test_backoff_grows_exponentially_with_bounded_jitter(self):
        sink = RecordingSink(fail_first=3)
        sleeper = SleepRecorder()
        dispatcher = AlertDispatcher([sink], max_attempts=4, sleep=sleeper,
                                     backoff_base=0.1, backoff_factor=2.0,
                                     jitter=0.5, seed=7)
        dispatcher.dispatch(_event())
        assert len(sleeper.sleeps) == 3
        for attempt, slept in enumerate(sleeper.sleeps):
            base = 0.1 * 2.0 ** attempt
            assert base <= slept <= base * 1.5
        # Strictly growing despite jitter: factor 2 dominates jitter 1.5x.
        assert sleeper.sleeps[0] < sleeper.sleeps[1] < sleeper.sleeps[2]

    def test_seeded_jitter_is_reproducible(self):
        def schedule():
            sink = RecordingSink(fail_first=3)
            sleeper = SleepRecorder()
            AlertDispatcher([sink], max_attempts=4, sleep=sleeper,
                            jitter=0.3, seed=42).dispatch(_event())
            return sleeper.sleeps

        assert schedule() == schedule()

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            AlertDispatcher(max_attempts=0)
        with pytest.raises(ValueError):
            AlertDispatcher(backoff_factor=0.5)
        with pytest.raises(ValueError):
            AlertDispatcher(jitter=-1.0)


class TestDeadLetter:
    def test_always_failing_sink_dead_letters(self, tmp_path):
        dead = tmp_path / "dead.jsonl"
        sink = RecordingSink(fail_first=99)
        registry = MetricsRegistry()
        dispatcher = AlertDispatcher([sink], registry=registry,
                                     max_attempts=3, sleep=SleepRecorder(),
                                     dead_letter_path=str(dead))
        event = _event()
        # Dispatched (the dedup window recorded it) but not delivered.
        assert dispatcher.dispatch(event) is True
        assert sink.delivered == []
        assert sink.attempts == 3
        (entry,) = [json.loads(line)
                    for line in dead.read_text().splitlines()]
        assert entry["sink"] == "recording"
        assert entry["attempts"] == 3
        assert len(entry["errors"]) == 3
        assert entry["payload"]["key"] == classify_event(event).key
        assert registry.value("alerts_dead_lettered",
                              {"sink": "recording"}) == 1
        assert registry.value("alerts_sent", {"sink": "recording"}) == 0

    def test_without_dead_letter_path_only_counts(self, tmp_path):
        sink = RecordingSink(fail_first=99)
        dispatcher = AlertDispatcher([sink], max_attempts=2,
                                     sleep=SleepRecorder())
        dispatcher.dispatch(_event())
        assert dispatcher.registry.value(
            "alerts_dead_lettered", {"sink": "recording"}) == 1

    def test_dead_letter_rotates_at_size_cap(self, tmp_path):
        dead = tmp_path / "dead.jsonl"
        sink = RecordingSink(fail_first=99)
        registry = MetricsRegistry()
        dispatcher = AlertDispatcher([sink], registry=registry,
                                     max_attempts=1, sleep=SleepRecorder(),
                                     dead_letter_path=str(dead),
                                     dead_letter_max_bytes=200)
        for start in range(1, 6):
            dispatcher.dispatch(_event(start=start, end=start + 1))
        rotated = tmp_path / "dead.jsonl.1"
        assert rotated.exists()
        assert registry.value("dead_letter_rotations") >= 1
        lines = (dead.read_text().splitlines()
                 + rotated.read_text().splitlines())
        for line in lines:
            assert json.loads(line)["sink"] == "recording"
        # The newest record always survives in the live file.
        newest = json.loads(dead.read_text().splitlines()[-1])
        assert newest["payload"]["start_bin"] == 5
        # The live file stays within cap + one record's worth of slack.
        assert dead.stat().st_size <= 200 + max(len(li) + 1 for li in lines)

    def test_dead_letter_rotation_disabled_with_zero_cap(self, tmp_path):
        dead = tmp_path / "dead.jsonl"
        sink = RecordingSink(fail_first=99)
        dispatcher = AlertDispatcher([sink], max_attempts=1,
                                     sleep=SleepRecorder(),
                                     dead_letter_path=str(dead),
                                     dead_letter_max_bytes=0)
        for start in range(1, 6):
            dispatcher.dispatch(_event(start=start, end=start + 1))
        assert not (tmp_path / "dead.jsonl.1").exists()
        assert len(dead.read_text().splitlines()) == 5

    def test_partial_failure_still_delivers_to_healthy_sinks(self, tmp_path):
        healthy = RecordingSink()
        broken = RecordingSink(fail_first=99)
        broken.name = "broken"
        dispatcher = AlertDispatcher([healthy, broken], max_attempts=2,
                                     sleep=SleepRecorder(),
                                     dead_letter_path=str(tmp_path / "d.jl"))
        assert dispatcher.dispatch(_event()) is True
        assert len(healthy.delivered) == 1
        assert broken.delivered == []


class TestDedup:
    def test_same_event_alerts_once(self):
        sink = RecordingSink()
        dispatcher = AlertDispatcher([sink])
        event = _event()
        assert dispatcher.dispatch(event) is True
        assert dispatcher.dispatch(event) is False
        assert len(sink.delivered) == 1
        assert dispatcher.registry.value("alerts_deduplicated") == 1

    def test_window_evicts_least_recently_alerted(self):
        sink = RecordingSink()
        dispatcher = AlertDispatcher([sink], dedup_window=2)
        first, second, third = (_event(start=s) for s in (1, 2, 3))
        dispatcher.dispatch(first)
        dispatcher.dispatch(second)
        dispatcher.dispatch(third)  # evicts `first`
        assert dispatcher.dispatch(first) is True
        assert len(sink.delivered) == 4

    def test_zero_window_disables_dedup(self):
        sink = RecordingSink()
        dispatcher = AlertDispatcher([sink], dedup_window=0)
        event = _event()
        assert dispatcher.dispatch(event) is True
        assert dispatcher.dispatch(event) is True
        assert len(sink.delivered) == 2

    def test_dispatch_many_counts_undeduplicated(self):
        sink = RecordingSink()
        dispatcher = AlertDispatcher([sink])
        events = [_event(start=1), _event(start=2), _event(start=1)]
        assert dispatcher.dispatch_many(events) == 2

    def test_close_closes_sinks(self):
        sink = RecordingSink()
        dispatcher = AlertDispatcher([sink])
        dispatcher.flush()
        dispatcher.close()
        assert sink.closed is True
