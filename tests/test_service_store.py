"""Event-store tests: idempotent upserts, queries, parity, thread safety."""

import threading

import pytest

from repro.core.events import AnomalyEvent
from repro.service import EventStore, classify_event, event_key
from repro.service.store import SCHEMA_VERSION


def _event(label="BFP", start=10, end=12, flows=(3, 1, 7),
           statistics=("spe", "t2")):
    return AnomalyEvent(
        traffic_label=label,
        start_bin=start,
        end_bin=end,
        od_flows=frozenset(flows),
        bins=tuple(range(start, end + 1)),
        statistics=frozenset(statistics),
    )


@pytest.fixture()
def store():
    with EventStore() as memory_store:
        yield memory_store


class TestUpserts:
    def test_add_is_idempotent(self, store):
        assert store.add_event(_event()) is True
        assert store.add_event(_event()) is False
        assert store.count() == 1

    def test_reclosed_event_updates_in_place(self, store):
        store.add_event(_event(end=12))
        assert store.add_event(_event(end=20)) is False
        assert store.count() == 1
        (stored,) = store.query()
        assert stored.end_bin == 20

    def test_add_events_returns_only_fresh(self, store):
        first = _event(label="B", statistics=("spe",))
        second = _event(label="BF")
        assert store.add_events([first, second]) == [first, second]
        third = _event(label="BFP", start=99, end=99, flows=(2,))
        assert store.add_events([first, third]) == [third]
        assert store.count() == 3

    def test_roundtrip_rebuilds_event(self, store):
        event = _event()
        store.add_event(event)
        (stored,) = store.query()
        assert stored.to_event() == event
        assert stored.event_key == event_key(event)

    def test_record_columns_match_classification(self, store):
        event = _event()
        store.add_event(event)
        (stored,) = store.query()
        record = classify_event(event)
        assert stored.severity == record.severity
        assert stored.confidence == record.confidence
        assert stored.summary == record.summary


class TestQueries:
    @pytest.fixture()
    def filled(self, store):
        store.add_events([
            _event(label="B", start=0, end=2, statistics=("spe",)),
            _event(label="BF", start=10, end=11),
            _event(label="BFP", start=20, end=26, flows=tuple(range(6))),
        ])
        return store

    def test_window_uses_intersection_semantics(self, filled):
        spanning = filled.query(start_bin=1, end_bin=15)
        assert [e.traffic_label for e in spanning] == ["B", "BF"]
        assert filled.query(start_bin=27) == []

    def test_label_severity_and_confidence_filters(self, filled):
        assert [e.traffic_label for e in filled.query(traffic_label="BF")] \
            == ["BF"]
        assert all(e.severity == "critical"
                   for e in filled.query(severity="critical"))
        high = filled.query(min_confidence=0.9)
        assert all(e.confidence >= 0.9 for e in high)

    def test_limit_and_deterministic_order(self, filled):
        assert [e.start_bin for e in filled.query()] == [0, 10, 20]
        assert len(filled.query(limit=2)) == 2
        with pytest.raises(ValueError):
            filled.query(limit=0)

    def test_recent_is_newest_first(self, filled):
        assert [e.start_bin for e in filled.recent(limit=2)] == [20, 10]

    def test_counts_and_summary(self, filled):
        assert filled.counts_by_label() == {"B": 1, "BF": 1, "BFP": 1}
        assert sum(filled.counts_by_severity().values()) == 3
        summary = filled.summary()
        assert summary.total_events == 3
        assert summary.max_end_bin == 26


class TestParitySurface:
    def test_same_content_same_digest(self):
        events = [_event(label="B", statistics=("spe",)), _event(label="BF")]
        with EventStore() as first, EventStore() as second:
            first.add_events(events)
            second.add_events(list(reversed(events)))  # insertion order
            assert first.canonical_rows() == second.canonical_rows()
            assert first.table_digest() == second.table_digest()

    def test_different_content_different_digest(self):
        with EventStore() as first, EventStore() as second:
            first.add_event(_event())
            second.add_event(_event(start=11))
            assert first.table_digest() != second.table_digest()

    def test_replay_leaves_digest_unchanged(self, store):
        events = [_event(label="B", statistics=("spe",)), _event(label="BFP")]
        store.add_events(events)
        digest = store.table_digest()
        assert store.add_events(events) == []
        assert store.table_digest() == digest


class TestLifecycle:
    def test_persists_across_reopen(self, tmp_path):
        path = tmp_path / "events.sqlite"
        with EventStore(path) as store:
            store.add_event(_event())
            digest = store.table_digest()
        with EventStore(path) as reopened:
            assert reopened.count() == 1
            assert reopened.table_digest() == digest
            assert reopened.schema_version() == SCHEMA_VERSION

    def test_close_is_idempotent(self):
        store = EventStore()
        store.close()
        store.close()

    def test_path_property(self, tmp_path):
        path = tmp_path / "events.sqlite"
        with EventStore(path) as store:
            assert store.path == str(path)

    def test_concurrent_writers_and_readers(self, tmp_path):
        store = EventStore(tmp_path / "events.sqlite")
        errors = []

        def write(offset):
            try:
                for i in range(25):
                    # Every thread upserts one shared event (contended key)
                    # plus its own distinct events.
                    store.add_event(_event())
                    store.add_event(_event(start=1000 + offset * 100 + i,
                                           end=1000 + offset * 100 + i))
                    store.count()
            except Exception as error:  # noqa: BLE001 - surfaced below
                errors.append(error)

        threads = [threading.Thread(target=write, args=(t,))
                   for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert store.count() == 1 + 4 * 25
        store.close()


class _LockedConnection:
    """Delegating connection proxy that fails the first *n* executes."""

    def __init__(self, real, fail_first):
        self._real = real
        self._fail_remaining = fail_first
        self.failures_raised = 0

    def execute(self, *args, **kwargs):
        if self._fail_remaining > 0:
            self._fail_remaining -= 1
            self.failures_raised += 1
            import sqlite3
            raise sqlite3.OperationalError("database is locked")
        return self._real.execute(*args, **kwargs)

    def __getattr__(self, name):
        return getattr(self._real, name)


class TestLockedRetry:
    def test_busy_timeout_pragma_applied(self, tmp_path):
        with EventStore(tmp_path / "e.sqlite",
                        busy_timeout_ms=1234) as store:
            (value,) = store._connection.execute(
                "PRAGMA busy_timeout").fetchone()
            assert value == 1234

    def test_locked_write_retries_then_succeeds(self, tmp_path):
        sleeps = []
        store = EventStore(tmp_path / "e.sqlite", lock_retries=3,
                           lock_backoff=0.01, sleep=sleeps.append)
        proxy = _LockedConnection(store._connection, fail_first=2)
        store._connection = proxy
        assert store.add_event(_event()) is True
        assert proxy.failures_raised == 2
        assert store.lock_retry_count == 2
        assert sleeps == [0.01, 0.02]
        store._connection = proxy._real
        assert store.count() == 1
        store.close()

    def test_locked_write_exhausts_retries(self, tmp_path):
        import sqlite3
        sleeps = []
        store = EventStore(tmp_path / "e.sqlite", lock_retries=2,
                           lock_backoff=0.0, sleep=sleeps.append)
        proxy = _LockedConnection(store._connection, fail_first=99)
        store._connection = proxy
        with pytest.raises(sqlite3.OperationalError, match="locked"):
            store.add_event(_event())
        assert store.lock_retry_count == 2
        assert len(sleeps) == 2
        store._connection = proxy._real
        store.close()

    def test_other_operational_errors_propagate_immediately(self, store):
        import sqlite3
        with pytest.raises(sqlite3.OperationalError, match="syntax"):
            store._with_lock_retry(lambda: store._connection.execute(
                "NOT VALID SQL"))
        assert store.lock_retry_count == 0

    def test_invalid_retry_policy_rejected(self):
        with pytest.raises(ValueError):
            EventStore(busy_timeout_ms=-1)
        with pytest.raises(ValueError):
            EventStore(lock_retries=-1)
