"""Tests for the streaming subsystem: online PCA, chunked detection,
incremental aggregation, sources, and the batch-parity guarantees."""

import itertools

import numpy as np
import pytest

from repro.core import SubspaceDetector, aggregate_detections, detect_network_anomalies
from repro.core.events import Detection
from repro.core.identification import identify_spe_flows
from repro.core.pca import EigenflowDecomposition
from repro.datasets import DatasetConfig, generate_abilene_dataset, synthetic_chunk_stream
from repro.evaluation import event_parity
from repro.flows.timeseries import TrafficType
from repro.streaming import (
    ChunkedSeriesSource,
    OnlineEventAggregator,
    OnlinePCA,
    StreamingConfig,
    StreamingNetworkDetector,
    StreamingSubspaceDetector,
    TrafficChunk,
    chunk_series,
    forgetting_from_half_life,
    replay_network_anomalies,
    stream_detect,
)


@pytest.fixture(scope="module")
def quickstart_dataset():
    """The exact dataset analyzed by examples/quickstart.py."""
    return generate_abilene_dataset(DatasetConfig(weeks=2.0 / 7.0), seed=7)


@pytest.fixture(scope="module")
def correlated_matrix():
    """A correlated random matrix (n=240, p=18) with nontrivial spectrum."""
    rng = np.random.default_rng(7)
    latent = rng.normal(size=(240, 5))
    mixing = rng.normal(size=(5, 18))
    return latent @ mixing + 40.0 + 0.1 * rng.normal(size=(240, 18))


class TestOnlinePCA:
    def test_chunked_moments_match_batch(self, correlated_matrix):
        pca = OnlinePCA()
        for start in range(0, 240, 37):  # deliberately ragged chunking
            pca.partial_fit(correlated_matrix[start:start + 37])
        assert pca.n_bins_seen == 240
        assert pca.n_samples == 240
        np.testing.assert_allclose(pca.mean, correlated_matrix.mean(axis=0))
        np.testing.assert_allclose(pca.covariance(),
                                   np.cov(correlated_matrix, rowvar=False))

    def test_eigenbasis_matches_batch_svd(self, correlated_matrix):
        pca = OnlinePCA().partial_fit(correlated_matrix)
        decomposition = EigenflowDecomposition(correlated_matrix)
        eigenvalues, axes = pca.eigenbasis()
        np.testing.assert_allclose(eigenvalues[:decomposition.rank],
                                   decomposition.eigenvalues,
                                   rtol=1e-8, atol=1e-8)
        # Axes agree up to sign for well-separated components.
        batch_axes = decomposition.principal_axes(4)
        overlap = np.abs(np.sum(axes[:, :4] * batch_axes, axis=0))
        np.testing.assert_allclose(overlap, 1.0, atol=1e-6)

    def test_eigenbasis_is_cached_until_new_data(self, correlated_matrix):
        pca = OnlinePCA().partial_fit(correlated_matrix[:100])
        first = pca.eigenbasis()[0]
        assert pca.eigenbasis()[0] is first
        pca.partial_fit(correlated_matrix[100:])
        assert pca.eigenbasis()[0] is not first

    def test_forgetting_tracks_level_shift(self):
        rng = np.random.default_rng(3)
        before = rng.normal(loc=10.0, size=(300, 6))
        after = rng.normal(loc=30.0, size=(300, 6))
        pca = OnlinePCA(forgetting=0.97)
        for start in range(0, 300, 50):
            pca.partial_fit(before[start:start + 50])
        for start in range(0, 300, 50):
            pca.partial_fit(after[start:start + 50])
        # With a ~23-bin effective window the old level is forgotten.
        assert np.all(np.abs(pca.mean - 30.0) < 1.0)
        assert pca.effective_samples < 100
        assert pca.n_bins_seen == 600

    def test_forgetting_weighting_is_order_aware(self):
        # The most recent bin must carry the largest weight.
        pca = OnlinePCA(forgetting=0.5)
        pca.partial_fit(np.array([[0.0], [0.0], [8.0]]))
        # Weights 0.25, 0.5, 1.0 -> mean = 8/1.75
        assert pca.mean[0] == pytest.approx(8.0 / 1.75)

    def test_validation(self):
        with pytest.raises(ValueError):
            OnlinePCA(forgetting=0.0)
        pca = OnlinePCA()
        with pytest.raises(ValueError):
            pca.covariance()
        pca.partial_fit(np.ones((3, 4)))
        with pytest.raises(ValueError):
            pca.partial_fit(np.ones((3, 5)))


class TestStreamingDetectorParity:
    def test_single_full_window_chunk_matches_fit_detect(self, quickstart_dataset):
        series = quickstart_dataset.series
        for traffic_type in series.traffic_types:
            matrix = series.matrix(traffic_type)
            batch = SubspaceDetector().fit_detect(matrix)
            streaming = StreamingSubspaceDetector(StreamingConfig())
            result = streaming.process_chunk(matrix)
            assert not result.warmup
            assert [(d.bin_index, d.triggered_by) for d in result.detections] == \
                [(d.bin_index, d.triggered_by) for d in batch.detections]
            np.testing.assert_allclose(result.spe, batch.spe, rtol=1e-6, atol=1e-4)
            assert result.limits.spe == pytest.approx(batch.spe_threshold, rel=1e-6)
            assert result.limits.t2 == pytest.approx(batch.t2_threshold, rel=1e-9)

    def test_chunked_replay_recovers_batch_events(self, quickstart_dataset):
        series = quickstart_dataset.series
        batch = detect_network_anomalies(series)
        replay = replay_network_anomalies(series, chunk_size=64)
        assert replay.events == batch.events
        assert replay.detections == batch.detections
        parity = event_parity(batch.events, replay.events)
        assert parity.exact
        assert parity.recall == 1.0

    def test_replay_parity_independent_of_chunk_size(self, quickstart_dataset):
        series = quickstart_dataset.series
        batch = detect_network_anomalies(series, traffic_types=[TrafficType.BYTES])
        for chunk_size in (7, 100, 576, 1000):
            replay = replay_network_anomalies(series, chunk_size=chunk_size,
                                              traffic_types=[TrafficType.BYTES])
            assert replay.events == batch.events, f"chunk_size={chunk_size}"

    def test_replay_rejects_forgetting(self, quickstart_dataset):
        with pytest.raises(ValueError):
            replay_network_anomalies(quickstart_dataset.series, chunk_size=64,
                                     config=StreamingConfig(forgetting=0.99))

    def test_warmup_then_live_detection(self, quickstart_dataset):
        series = quickstart_dataset.series
        matrix = series.matrix(TrafficType.BYTES)
        config = StreamingConfig(min_train_bins=128, recalibrate_every_bins=32)
        detector = StreamingSubspaceDetector(config)
        results = [detector.process_chunk(matrix[s:s + 64])
                   for s in range(0, matrix.shape[0], 64)]
        # 128 bins are ingested by the end of the second chunk, so only the
        # first chunk is pure warmup (update-then-detect semantics).
        assert results[0].warmup
        assert all(not r.warmup for r in results[1:])
        # Stream-global indexing: chunk i covers bins [64 i, 64 i + 64).
        for i, result in enumerate(results):
            assert result.start_bin == 64 * i
            for detection in result.detections:
                assert 64 * i <= detection.bin_index < 64 * (i + 1)
        assert detector.is_warmed_up
        assert detector.snapshot.n_bins_trained >= 128

    def test_identification_matches_batch_on_replay(self, quickstart_dataset):
        series = quickstart_dataset.series
        batch = detect_network_anomalies(series, traffic_types=[TrafficType.FLOWS])
        replay = replay_network_anomalies(series, chunk_size=96,
                                          traffic_types=[TrafficType.FLOWS])
        batch_flows = {d.bin_index: d.od_flows
                       for d in batch.detections[TrafficType.FLOWS]}
        stream_flows = {d.bin_index: d.od_flows
                        for d in replay.detections[TrafficType.FLOWS]}
        assert batch_flows == stream_flows


class TestOnlineEventAggregator:
    def _detections_from(self, report):
        return [d for per_type in report.detections.values() for d in per_type]

    def test_incremental_replay_matches_batch_aggregation(self, quickstart_dataset):
        report = detect_network_anomalies(quickstart_dataset.series)
        detections = self._detections_from(report)
        batch_events = aggregate_detections(detections)

        aggregator = OnlineEventAggregator()
        events = []
        for watermark in range(0, quickstart_dataset.n_bins, 48):
            window_end = min(watermark + 48, quickstart_dataset.n_bins)
            for detection in detections:
                if watermark <= detection.bin_index < window_end:
                    aggregator.add(detection)
            events.extend(aggregator.advance(window_end - 1))
        events.extend(aggregator.flush())
        assert events == batch_events

    def test_run_closes_on_gap_and_label_change(self):
        def det(t, b):
            return Detection(traffic_type=t, bin_index=b, od_flows=(1,))

        aggregator = OnlineEventAggregator()
        aggregator.add(det(TrafficType.BYTES, 3))
        aggregator.add(det(TrafficType.BYTES, 4))
        aggregator.add(det(TrafficType.BYTES, 5))
        aggregator.add(det(TrafficType.PACKETS, 5))
        assert aggregator.advance(2) == []
        # Bins 3-4 share label B; bin 5 is BP -> run closes at 4.
        events = aggregator.advance(4)
        assert events == []  # bin 5 pending above watermark? no: 5 > 4 stays buffered
        events = aggregator.advance(6)
        assert [e.traffic_label for e in events] == ["B", "BP"]
        assert events[0].bins == (3, 4)
        assert events[1].bins == (5,)
        assert not aggregator.has_open_run

    def test_open_run_waits_at_watermark(self):
        def det(b):
            return Detection(traffic_type=TrafficType.BYTES, bin_index=b,
                             od_flows=(2,))

        aggregator = OnlineEventAggregator()
        aggregator.add(det(9))
        assert aggregator.advance(9) == []  # could still extend into bin 10
        aggregator.add(det(10))
        assert aggregator.advance(10) == []
        events = aggregator.flush()
        assert len(events) == 1
        assert events[0].bins == (9, 10)

    def test_late_detection_rejected(self):
        aggregator = OnlineEventAggregator()
        aggregator.add(Detection(traffic_type=TrafficType.BYTES, bin_index=5,
                                 od_flows=(1,)))
        aggregator.advance(6)
        with pytest.raises(ValueError):
            aggregator.add(Detection(traffic_type=TrafficType.BYTES, bin_index=6,
                                     od_flows=(1,)))

    def test_bounded_memory(self):
        aggregator = OnlineEventAggregator()
        for start in range(0, 10_000, 100):
            for b in range(start, start + 100, 7):
                aggregator.add(Detection(traffic_type=TrafficType.FLOWS,
                                         bin_index=b, od_flows=(0,)))
            aggregator.advance(start + 99)
            assert aggregator.n_pending_bins == 0


class TestSources:
    def test_chunk_series_covers_all_bins(self, small_dataset):
        series = small_dataset.series
        chunks = list(chunk_series(series, 100))
        assert chunks[0].start_bin == 0
        assert sum(c.n_bins for c in chunks) == series.n_bins
        starts = [c.start_bin for c in chunks]
        assert starts == sorted(starts)
        for chunk in chunks:
            assert set(chunk.traffic_types) == set(series.traffic_types)
            assert chunk.n_od_pairs == series.n_od_pairs
        # Zero-copy: chunk rows are views of the series matrices.
        first = chunks[0]
        t = series.traffic_types[0]
        assert np.shares_memory(first.matrix(t), series.matrix(t))

    def test_chunked_source_is_reiterable(self, small_dataset):
        source = ChunkedSeriesSource(small_dataset.series, 96)
        assert len(source) == -(-small_dataset.n_bins // 96)
        assert len(list(source)) == len(list(source))

    def test_traffic_chunk_validation(self):
        with pytest.raises(ValueError):
            TrafficChunk(start_bin=0, matrices={})
        with pytest.raises(ValueError):
            TrafficChunk(start_bin=0, matrices={
                TrafficType.BYTES: np.ones((4, 3)),
                TrafficType.FLOWS: np.ones((4, 2)),
            })

    def test_traffic_chunk_coerces_array_likes(self):
        chunk = TrafficChunk(start_bin=0, matrices={
            TrafficType.BYTES: [[1.0, 2.0], [3.0, 4.0]],
        })
        assert isinstance(chunk.matrix(TrafficType.BYTES), np.ndarray)
        assert chunk.n_bins == 2 and chunk.n_od_pairs == 2

    def test_synthetic_stream_is_contiguous_and_reproducible(self):
        block = DatasetConfig(weeks=0.25 / 7.0)  # 72-bin blocks, fast
        feed = synthetic_chunk_stream(chunk_size=32, block_config=block, seed=5)
        chunks = list(itertools.islice(feed, 7))  # spans three blocks
        expected_start = 0
        for chunk in chunks:
            assert chunk.start_bin == expected_start
            expected_start = chunk.end_bin
        again = list(itertools.islice(
            synthetic_chunk_stream(chunk_size=32, block_config=block, seed=5), 7))
        for a, b in zip(chunks, again):
            for t in a.traffic_types:
                np.testing.assert_array_equal(a.matrix(t), b.matrix(t))

    def test_synthetic_stream_max_blocks(self):
        block = DatasetConfig(weeks=0.25 / 7.0, schedule=None)
        chunks = list(synthetic_chunk_stream(chunk_size=36, block_config=block,
                                             seed=1, max_blocks=2))
        assert sum(c.n_bins for c in chunks) == 2 * block.n_bins

    def test_chunked_source_start_bin_offset(self, small_dataset):
        # Regression: the source must pass the start_bin offset through to
        # chunk_series, so a restored detector can replay a series as the
        # suffix of a longer stream.
        series = small_dataset.series
        source = ChunkedSeriesSource(series, 96, start_bin=288)
        chunks = list(source)
        assert chunks[0].start_bin == 288
        assert chunks[-1].end_bin == 288 + series.n_bins
        assert source.start_bin == 288
        # Re-iterable with the same offset, and identical to the generator.
        again = list(source)
        assert [c.start_bin for c in again] == [c.start_bin for c in chunks]
        direct = list(chunk_series(series, 96, start_bin=288))
        assert [c.start_bin for c in direct] == [c.start_bin for c in chunks]
        with pytest.raises(ValueError):
            ChunkedSeriesSource(series, 96, start_bin=-1)

    def test_synthetic_stream_resumes_at_start_block(self):
        block = DatasetConfig(weeks=0.25 / 7.0)
        full = list(synthetic_chunk_stream(chunk_size=24, block_config=block,
                                           seed=9, max_blocks=3))
        resumed = list(synthetic_chunk_stream(chunk_size=24,
                                              block_config=block, seed=9,
                                              max_blocks=3, start_block=1))
        suffix = [c for c in full if c.start_bin >= block.n_bins]
        assert [c.start_bin for c in resumed] == [c.start_bin for c in suffix]
        for a, b in zip(resumed, suffix):
            for t in a.traffic_types:
                np.testing.assert_array_equal(a.matrix(t), b.matrix(t))


class TestStreamingEdgeCases:
    def test_single_bin_chunks_match_batch_moments(self, correlated_matrix):
        engine = OnlinePCA()
        for row in correlated_matrix:
            engine.partial_fit(row[np.newaxis, :])
        assert engine.n_bins_seen == correlated_matrix.shape[0]
        np.testing.assert_allclose(engine.covariance(),
                                   np.cov(correlated_matrix, rowvar=False),
                                   rtol=1e-8, atol=1e-8)

    def test_single_bin_chunks_through_detector(self, quickstart_dataset):
        # Driving the detector one bin at a time must flag the same bins as
        # a whole-window replay with the same frozen training schedule.
        series = quickstart_dataset.series
        matrix = series.matrix(TrafficType.BYTES)
        config = StreamingConfig(min_train_bins=matrix.shape[0],
                                 identify=False)
        whole = StreamingSubspaceDetector(config)
        whole.process_chunk(matrix)
        one_by_one = StreamingSubspaceDetector(config)
        for start in range(0, matrix.shape[0]):
            result = one_by_one.process_chunk(matrix[start:start + 1])
        assert result.end_bin == matrix.shape[0]
        one_by_one.calibrate()
        flagged = one_by_one.detect_chunk(matrix, 0)
        assert flagged.anomalous_bins == \
            whole.detect_chunk(matrix, 0).anomalous_bins

    def test_spe_matches_two_gemm_residual_path(self, quickstart_dataset):
        # detect_chunk computes the SPE as ||c||² − ||scores||² (orthonormal
        # axes) instead of materializing the full residual matrix; this must
        # agree numerically with the explicit two-GEMM residual path, and
        # the identified OD flows of flagged bins must be unchanged.
        series = quickstart_dataset.series
        matrix = series.matrix(TrafficType.BYTES)
        detector = StreamingSubspaceDetector(StreamingConfig())
        result = detector.process_chunk(matrix)
        snapshot = detector.snapshot
        centered = matrix - snapshot.mean
        scores = centered @ snapshot.normal_axes
        residual = centered - scores @ snapshot.normal_axes.T
        reference_spe = np.sum(residual**2, axis=1)
        scale = float(np.einsum("ij,ij->i", centered, centered).max())
        np.testing.assert_allclose(result.spe, reference_spe,
                                   rtol=1e-9, atol=1e-12 * scale)
        for detection in result.detections:
            if detection.statistic != "spe":
                continue
            flows = identify_spe_flows(residual[detection.bin_index],
                                       snapshot.limits.spe,
                                       detector.config.max_identified_flows)
            assert detection.od_flows == tuple(flows)

    def test_chunk_size_larger_than_stream(self, small_dataset):
        series = small_dataset.series
        source = ChunkedSeriesSource(series, series.n_bins * 3)
        assert len(source) == 1
        (only,) = list(source)
        assert only.n_bins == series.n_bins
        replay = replay_network_anomalies(series, chunk_size=series.n_bins * 3)
        batch = detect_network_anomalies(series)
        assert replay.events == batch.events

    def test_heavy_forgetting_saturates_effective_samples(self):
        lam = 0.5
        rng = np.random.default_rng(8)
        engine = OnlinePCA(forgetting=lam)
        for _ in range(40):
            engine.partial_fit(rng.normal(size=(25, 4)) + 10.0)
        # Kish effective size saturates at (1 + λ) / (1 - λ) = 3 despite
        # having ingested 1000 bins.
        assert engine.n_bins_seen == 1000
        assert engine.effective_samples == pytest.approx(
            (1 + lam) / (1 - lam), abs=1e-6)
        assert engine.n_samples == 3

    def test_heavy_forgetting_keeps_detector_in_warmup(self):
        # n_samples saturated at 3 can never exceed n_normal + 1 = 5, so
        # the detector must refuse to calibrate rather than hand a bogus
        # sample count to the F-based T² limit.
        rng = np.random.default_rng(21)
        config = StreamingConfig(forgetting=0.5, min_train_bins=2)
        detector = StreamingSubspaceDetector(config)
        for _ in range(30):
            result = detector.process_chunk(rng.normal(size=(20, 8)) + 5.0)
        assert result.warmup
        assert not detector.is_warmed_up
        with pytest.raises(ValueError):
            detector.calibrate()

    def test_covariance_needs_total_weight_above_one(self):
        engine = OnlinePCA()
        engine.partial_fit(np.array([[1.0, 2.0, 3.0]]))
        # One bin -> total weight exactly 1 -> no ddof-1 sample covariance.
        assert engine.weight_sum == 1.0
        with pytest.raises(ValueError):
            engine.covariance()
        engine.partial_fit(np.array([[2.0, 1.0, 5.0]]))
        assert engine.covariance().shape == (3, 3)

    def test_sharded_covariance_weight_guard(self):
        from repro.streaming import ShardedOnlinePCA
        engine = ShardedOnlinePCA(n_shards=2)
        engine.partial_fit(np.array([[1.0, 2.0, 3.0, 4.0]]))
        with pytest.raises(ValueError):
            engine.covariance()


class TestLiveStreaming:
    def test_stream_detect_end_to_end(self, quickstart_dataset):
        series = quickstart_dataset.series
        config = StreamingConfig(
            forgetting=forgetting_from_half_life(288),
            min_train_bins=128,
            recalibrate_every_bins=32,
        )
        report = stream_detect(chunk_series(series, 48), config)
        assert report.n_bins_processed == series.n_bins
        assert report.n_chunks_processed == 12
        assert report.n_events > 0
        # Events are emitted in span order with valid labels and flows.
        starts = [e.start_bin for e in report.events]
        assert starts == sorted(starts)
        for event in report.events:
            assert event.n_od_flows >= 1
        # The live run should rediscover most of the batch event spans that
        # fall after its warmup period.
        batch = detect_network_anomalies(series)
        warmup_end = 128
        post_warmup = [e for e in batch.events if e.start_bin >= warmup_end]
        parity = event_parity(post_warmup, report.events)
        assert parity.span_recall >= 0.6

    def test_network_detector_requires_identification(self):
        with pytest.raises(ValueError):
            StreamingNetworkDetector(StreamingConfig(identify=False))

    def test_detection_without_identification(self, quickstart_dataset):
        matrix = quickstart_dataset.series.matrix(TrafficType.BYTES)
        config = StreamingConfig(identify=False, min_train_bins=64)
        detector = StreamingSubspaceDetector(config)
        result = detector.process_chunk(matrix)
        assert result.detections
        for detection in result.detections:
            assert detection.od_flows == ()
            with pytest.raises(ValueError):
                detection.to_detection(TrafficType.BYTES)
