"""Tests of the asyncio → synchronous chunk-stream bridge.

``AsyncChunkSource`` must behave exactly like the plain iterable it
replaces (same chunks, same order ⇒ same report), while enforcing bounded
backpressure, the in-order/gapless watermark contract, and producer-error
propagation.
"""

import asyncio
import threading
import time

import numpy as np
import pytest

from repro.evaluation import event_parity
from repro.flows.timeseries import TrafficType
from repro.streaming import (
    AsyncChunkSource,
    StreamingConfig,
    TrafficChunk,
    stream_detect,
)


def make_chunks(n_chunks=10, n_bins=16, n_flows=6):
    rng = np.random.default_rng(7)
    return [TrafficChunk(start_bin=n_bins * i, matrices={
        TrafficType.BYTES: rng.random((n_bins, n_flows)) + 1.0})
        for i in range(n_chunks)]


def feed_async(source, chunks, error=None):
    """Run an asyncio producer to completion on a fresh event loop."""
    async def producer():
        for chunk in chunks:
            await source.put(chunk)
        if error is not None:
            source.abort(error)
        else:
            await source.aclose()

    asyncio.run(producer())


class TestBridgeParity:
    def test_detection_report_matches_plain_iterable(self):
        chunks = make_chunks()
        config = StreamingConfig(min_train_bins=64, recalibrate_every_bins=16)
        baseline = stream_detect(chunks, config)

        source = AsyncChunkSource(maxsize=2)
        producer = threading.Thread(target=feed_async,
                                    args=(source, chunks), daemon=True)
        producer.start()
        report = stream_detect(source, config)
        producer.join(timeout=30)
        assert event_parity(baseline.events, report.events).exact
        assert report.n_chunks_processed == len(chunks)
        assert source.consumed_watermark == chunks[-1].end_bin
        assert source.produced_watermark == chunks[-1].end_bin

    def test_backpressure_bounds_the_producer(self):
        chunks = make_chunks()
        source = AsyncChunkSource(maxsize=2)
        producer = threading.Thread(target=feed_async,
                                    args=(source, chunks), daemon=True)
        producer.start()
        time.sleep(0.5)
        # No consumer yet: the producer must be parked at the bound, not
        # done with the whole stream.
        assert producer.is_alive()
        assert source.produced_watermark <= chunks[2].end_bin
        consumed = list(source)
        producer.join(timeout=30)
        assert not producer.is_alive()
        assert len(consumed) == len(chunks)
        assert [c.start_bin for c in consumed] == \
            [c.start_bin for c in chunks]

    def test_iteration_after_close_keeps_stopping(self):
        source = AsyncChunkSource()
        source.close()
        assert list(source) == []
        assert list(source) == []


class TestWatermarkContract:
    def test_gap_is_rejected(self):
        chunks = make_chunks(n_chunks=3)
        source = AsyncChunkSource()
        source.put_sync(chunks[0])
        with pytest.raises(ValueError, match="out-of-order"):
            source.put_sync(chunks[2])

    def test_explicit_start_bin_is_enforced(self):
        source = AsyncChunkSource(start_bin=100)
        with pytest.raises(ValueError, match="expected start_bin 100"):
            source.put_sync(make_chunks(n_chunks=1)[0])

    def test_put_after_close_is_rejected(self):
        source = AsyncChunkSource()
        source.close()
        with pytest.raises(ValueError, match="closed"):
            source.put_sync(make_chunks(n_chunks=1)[0])


class TestErrorPropagation:
    def test_abort_reaches_the_consumer_before_buffered_chunks(self):
        chunks = make_chunks(n_chunks=2)
        source = AsyncChunkSource(maxsize=4)
        source.put_sync(chunks[0])
        source.abort(RuntimeError("collector lost its session"))
        with pytest.raises(RuntimeError, match="collector lost"):
            next(iter(source))

    def test_producer_failure_propagates_through_the_driver(self):
        chunks = make_chunks(n_chunks=4)
        source = AsyncChunkSource(maxsize=2)
        producer = threading.Thread(
            target=feed_async,
            args=(source, chunks, RuntimeError("export died")), daemon=True)
        producer.start()
        with pytest.raises(RuntimeError, match="export died"):
            stream_detect(source, StreamingConfig(min_train_bins=64))
        producer.join(timeout=30)
