"""Unit tests of the shared-memory chunk bus (single-process harness).

The bus is process-agnostic: a reader attaches by segment name, so writer
and reader can live in one process and the ring/refcount/backpressure
semantics are exercised directly, without multiprocessing nondeterminism.
The multi-process behaviour is covered end to end by
``tests/test_streaming_parallel.py``.
"""

import numpy as np
import pytest

from repro.flows.timeseries import TrafficType
from repro.streaming import (
    ChunkBusReader,
    ChunkBusWriter,
    TrafficChunk,
    chunk_slot_bytes,
)


def make_chunk(start_bin=0, n_bins=8, n_flows=5, seed=0):
    rng = np.random.default_rng(seed)
    return TrafficChunk(start_bin=start_bin, matrices={
        TrafficType.BYTES: rng.random((n_bins, n_flows)) + 1.0,
        TrafficType.PACKETS: rng.random((n_bins, n_flows)) + 1.0,
    })


@pytest.fixture()
def bus():
    chunk = make_chunk()
    writer = ChunkBusWriter(chunk_slot_bytes(chunk), n_slots=2, n_readers=1)
    reader = ChunkBusReader(writer.handle())
    yield writer, reader, chunk
    reader.close()
    writer.close()


class TestPublishMap:
    def test_roundtrip_values_and_keys(self, bus):
        writer, reader, chunk = bus
        descriptor = writer.publish(chunk)
        views = reader.map(descriptor)
        assert set(views) == {"bytes", "packets"}
        for traffic_type in (TrafficType.BYTES, TrafficType.PACKETS):
            np.testing.assert_array_equal(views[traffic_type.value],
                                          chunk.matrix(traffic_type))
        views = None
        reader.release(descriptor)

    def test_views_are_read_only(self, bus):
        writer, reader, chunk = bus
        descriptor = writer.publish(chunk)
        views = reader.map(descriptor)
        with pytest.raises(ValueError):
            views["bytes"][0, 0] = 0.0
        views = None
        reader.release(descriptor)

    def test_descriptor_carries_stream_position(self, bus):
        writer, reader, chunk = bus
        descriptor = writer.publish(chunk)
        assert descriptor.start_bin == chunk.start_bin
        assert descriptor.n_bins == chunk.n_bins
        reader.release(descriptor)

    def test_slots_rotate_round_robin(self, bus):
        writer, reader, chunk = bus
        slots = []
        for i in range(4):
            descriptor = writer.publish(make_chunk(start_bin=8 * i, seed=i))
            slots.append(descriptor.slot)
            views = reader.map(descriptor)
            np.testing.assert_array_equal(
                views["bytes"], make_chunk(start_bin=8 * i, seed=i).matrix(
                    TrafficType.BYTES))
            views = None
            reader.release(descriptor)
        assert slots == [0, 1, 0, 1]

    def test_smaller_tail_chunk_fits(self, bus):
        writer, reader, chunk = bus
        tail = make_chunk(start_bin=8, n_bins=3, seed=7)
        descriptor = writer.publish(tail)
        views = reader.map(descriptor)
        np.testing.assert_array_equal(views["bytes"],
                                      tail.matrix(TrafficType.BYTES))
        views = None
        reader.release(descriptor)

    def test_oversized_chunk_is_rejected(self, bus):
        writer, _, chunk = bus
        grown = make_chunk(n_bins=chunk.n_bins * 2)
        with pytest.raises(ValueError, match="size the bus from the largest"):
            writer.publish(grown)


class TestRefcountsAndBackpressure:
    def test_full_ring_blocks_until_release(self, bus):
        writer, reader, chunk = bus
        first = writer.publish(chunk)
        writer.publish(make_chunk(start_bin=8, seed=1))

        probes = []

        def alive_check():
            probes.append(True)
            if len(probes) >= 2:
                raise TimeoutError("ring still full")

        # Both slots held: the third publish must block and poll the check.
        with pytest.raises(TimeoutError):
            writer.publish(make_chunk(start_bin=16, seed=2),
                           alive_check=alive_check, poll_seconds=0.01)
        assert probes  # the wait actually polled liveness

        reader.release(first)
        third = writer.publish(make_chunk(start_bin=16, seed=2),
                               poll_seconds=0.01)
        assert third.slot == first.slot  # recycled the freed slot
        reader.release(third)
        # Tear down the slot still held by the second publish.
        reader.release(type(first)(slot=1, start_bin=8, arrays=first.arrays))

    def test_multi_reader_slot_frees_after_last_release(self):
        chunk = make_chunk()
        writer = ChunkBusWriter(chunk_slot_bytes(chunk), n_slots=2,
                                n_readers=3)
        readers = [ChunkBusReader(writer.handle()) for _ in range(3)]
        try:
            descriptor = writer.publish(chunk)
            for reader in readers[:2]:
                reader.release(descriptor)
            # One hold-out left: a wait on full release must still time out.
            with pytest.raises(TimeoutError):
                writer.wait_all_released(
                    alive_check=lambda: (_ for _ in ()).throw(
                        TimeoutError("held")),
                    poll_seconds=0.01)
            readers[2].release(descriptor)
            writer.wait_all_released(poll_seconds=0.01)
        finally:
            for reader in readers:
                reader.close()
            writer.close()

    def test_over_release_is_rejected(self, bus):
        writer, reader, chunk = bus
        descriptor = writer.publish(chunk)
        reader.release(descriptor)
        with pytest.raises(ValueError, match="released more times"):
            reader.release(descriptor)


class TestLifecycle:
    def test_validation(self):
        with pytest.raises(ValueError):
            ChunkBusWriter(slot_bytes=0, n_slots=2, n_readers=1)
        with pytest.raises(ValueError):
            ChunkBusWriter(slot_bytes=64, n_slots=1, n_readers=1)
        with pytest.raises(ValueError):
            ChunkBusWriter(slot_bytes=64, n_slots=2, n_readers=0)

    def test_close_is_idempotent_and_final(self):
        chunk = make_chunk()
        writer = ChunkBusWriter(chunk_slot_bytes(chunk), n_slots=2,
                                n_readers=1)
        reader = ChunkBusReader(writer.handle())
        reader.close()
        reader.close()
        writer.close()
        writer.close()
        with pytest.raises(ValueError, match="closed"):
            writer.publish(chunk)
        with pytest.raises(ValueError, match="closed"):
            reader.map(None)

    def test_slot_bytes_accounts_every_matrix(self):
        chunk = make_chunk(n_bins=4, n_flows=3)
        assert chunk_slot_bytes(chunk) == 2 * 4 * 3 * 8
