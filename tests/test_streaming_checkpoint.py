"""Restart-parity tests for streaming checkpoints.

A detector checkpointed mid-stream and restored must emit the **identical**
remaining event list an uninterrupted run would have produced — including
events whose runs span the checkpoint boundary — and its numerical state
must survive the npz round trip bit-for-bit.
"""

import json

import numpy as np
import pytest

from repro.core.events import Detection
from repro.evaluation import event_parity, report_parity
from repro.flows.timeseries import TrafficType
from repro.streaming import (
    CHECKPOINT_FORMAT_VERSION,
    ChunkedSeriesSource,
    OnlineEventAggregator,
    StreamingConfig,
    StreamingNetworkDetector,
    chunk_series,
    load_checkpoint,
    save_checkpoint,
    stream_detect,
)
from repro.streaming import has_checkpoint
from repro.streaming.checkpoint import (ARRAYS_FILENAME_PREFIX,
                                        MANIFEST_FILENAME,
                                        QUARANTINE_DIRNAME,
                                        newest_generation)
from repro.telemetry import MetricsRegistry

CHUNK = 48


@pytest.fixture(scope="module")
def live_config():
    return StreamingConfig(min_train_bins=128, recalibrate_every_bins=32)


@pytest.fixture(scope="module")
def uninterrupted(small_dataset, live_config):
    """The reference: one run over all chunks without a restart."""
    return stream_detect(chunk_series(small_dataset.series, CHUNK),
                         live_config)


def _chunks(dataset):
    return list(chunk_series(dataset.series, CHUNK))


class TestCheckpointRoundtrip:
    def test_manifest_and_arrays_on_disk(self, small_dataset, live_config,
                                         tmp_path):
        detector = StreamingNetworkDetector(live_config)
        for chunk in _chunks(small_dataset)[:4]:
            detector.process_chunk(chunk)
        path = save_checkpoint(detector, tmp_path / "ckpt")
        assert (path / MANIFEST_FILENAME).is_file()
        manifest = json.loads((path / MANIFEST_FILENAME).read_text())
        assert manifest["format_version"] == CHECKPOINT_FORMAT_VERSION
        assert manifest["arrays_file"].startswith(ARRAYS_FILENAME_PREFIX)
        assert (path / manifest["arrays_file"]).is_file()
        assert manifest["meta"]["config"]["n_normal"] == live_config.n_normal
        # One engine per traffic type, plus snapshots once warmed up.
        assert set(manifest["meta"]["detectors"]) == \
            {t.value for t in small_dataset.series.traffic_types}
        with np.load(path / manifest["arrays_file"]) as arrays:
            assert sorted(arrays.files) == manifest["array_names"]

    def test_state_restores_bitwise(self, small_dataset, live_config,
                                    tmp_path):
        detector = StreamingNetworkDetector(live_config)
        for chunk in _chunks(small_dataset)[:5]:
            detector.process_chunk(chunk)
        detector.save(tmp_path / "ckpt")
        restored = StreamingNetworkDetector.restore(tmp_path / "ckpt")
        for traffic_type in small_dataset.series.traffic_types:
            original = detector.detector(traffic_type)
            twin = restored.detector(traffic_type)
            np.testing.assert_array_equal(twin.engine.covariance(),
                                          original.engine.covariance())
            assert twin.engine.weight_sum == original.engine.weight_sum
            assert twin.engine.n_bins_seen == original.engine.n_bins_seen
            assert twin.bins_processed == original.bins_processed
            np.testing.assert_array_equal(twin.snapshot.normal_axes,
                                          original.snapshot.normal_axes)
            assert twin.snapshot.limits == original.snapshot.limits
        assert restored.aggregator.watermark == detector.aggregator.watermark
        assert restored.report.to_dict() == detector.report.to_dict()

    @pytest.mark.parametrize("split", [2, 5, 9])
    def test_restart_emits_identical_remaining_events(
            self, small_dataset, live_config, uninterrupted, tmp_path, split):
        chunks = _chunks(small_dataset)
        detector = StreamingNetworkDetector(live_config)
        for chunk in chunks[:split]:
            detector.process_chunk(chunk)
        detector.save(tmp_path / f"ckpt{split}")

        restored = StreamingNetworkDetector.restore(tmp_path / f"ckpt{split}")
        for chunk in chunks[split:]:
            restored.process_chunk(chunk)
        report = restored.finish()

        parity = event_parity(uninterrupted.events, report.events)
        assert parity.exact, parity.to_dict()
        full = report_parity(uninterrupted, report)
        assert all(full["equal"].values()), full["equal"]

    def test_restart_resumes_from_suffix_source(
            self, small_dataset, live_config, uninterrupted, tmp_path):
        """Restore + replay the remaining bins as a ChunkedSeriesSource suffix."""
        chunks = _chunks(small_dataset)
        split = 6
        detector = StreamingNetworkDetector(live_config)
        for chunk in chunks[:split]:
            detector.process_chunk(chunk)
        detector.save(tmp_path / "ckpt")

        restored = StreamingNetworkDetector.restore(tmp_path / "ckpt")
        resume_bin = restored.detector(TrafficType.BYTES).bins_processed
        assert resume_bin == split * CHUNK
        suffix = small_dataset.series.window(resume_bin,
                                             small_dataset.series.n_bins)
        source = ChunkedSeriesSource(suffix, CHUNK, start_bin=resume_bin)
        for chunk in source:
            restored.process_chunk(chunk)
        report = restored.finish()
        assert event_parity(uninterrupted.events, report.events).exact

    def test_sharded_checkpoint_roundtrip(self, small_dataset, tmp_path):
        config = StreamingConfig(min_train_bins=128,
                                 recalibrate_every_bins=32, n_shards=4)
        chunks = _chunks(small_dataset)
        full = stream_detect(iter(chunks), config)

        detector = StreamingNetworkDetector(config)
        for chunk in chunks[:4]:
            detector.process_chunk(chunk)
        detector.save(tmp_path / "ckpt")
        restored = StreamingNetworkDetector.restore(tmp_path / "ckpt")
        engine = restored.detector(TrafficType.BYTES).engine
        assert engine.n_shards == 4
        for chunk in chunks[4:]:
            restored.process_chunk(chunk)
        assert event_parity(full.events, restored.finish().events).exact


class TestAggregatorStateAcrossBoundary:
    def _detection(self, bin_index, traffic_type=TrafficType.BYTES):
        return Detection(traffic_type=traffic_type, bin_index=bin_index,
                         od_flows=(3, 5))

    def test_open_run_survives_roundtrip(self):
        aggregator = OnlineEventAggregator()
        for b in (10, 11, 12):
            aggregator.add(self._detection(b))
        aggregator.advance(12)  # run 10-12 still open at the watermark

        restored = OnlineEventAggregator.from_state(aggregator.state_dict())
        assert restored.watermark == 12
        assert restored.has_open_run
        restored.add(self._detection(13))
        events = restored.advance(14)  # bin 14 empty -> run closes
        events.extend(restored.flush())
        assert [e.bins for e in events] == [(10, 11, 12, 13)]

    def test_pending_bins_survive_roundtrip(self):
        aggregator = OnlineEventAggregator()
        aggregator.add(self._detection(7))
        aggregator.add(self._detection(7, TrafficType.FLOWS))
        aggregator.add(self._detection(9))
        state = aggregator.state_dict()
        assert set(state["pending"]) == {"7", "9"}

        restored = OnlineEventAggregator.from_state(state)
        assert restored.n_pending_bins == 2
        events = restored.advance(10)
        assert [e.traffic_label for e in events] == ["BF", "B"]
        assert events[0].od_flows == frozenset({3, 5})

    def test_roundtrip_equals_uninterrupted_aggregation(self):
        detections = [self._detection(b) for b in (3, 4, 8, 9, 10, 15)]
        straight = OnlineEventAggregator()
        straight.add_many(detections)
        expected = straight.flush()

        closed = []
        first = OnlineEventAggregator()
        first.add_many([d for d in detections if d.bin_index <= 8])
        closed.extend(first.advance(8))  # run (8,) is open at the boundary
        second = OnlineEventAggregator.from_state(first.state_dict())
        second.add_many([d for d in detections if d.bin_index > 8])
        closed.extend(second.flush())
        assert closed == expected


class TestCheckpointErrors:
    def test_missing_files(self, tmp_path):
        with pytest.raises(ValueError):
            load_checkpoint(tmp_path / "nowhere")

    def test_version_mismatch(self, small_dataset, live_config, tmp_path):
        detector = StreamingNetworkDetector(live_config)
        detector.process_chunk(_chunks(small_dataset)[0])
        path = save_checkpoint(detector, tmp_path / "ckpt")
        manifest = json.loads((path / MANIFEST_FILENAME).read_text())
        manifest["format_version"] = 999
        (path / MANIFEST_FILENAME).write_text(json.dumps(manifest))
        with pytest.raises(ValueError):
            load_checkpoint(path)

    def test_truncated_arrays_detected(self, small_dataset, live_config,
                                       tmp_path):
        detector = StreamingNetworkDetector(live_config)
        detector.process_chunk(_chunks(small_dataset)[0])
        path = save_checkpoint(detector, tmp_path / "ckpt")
        manifest = json.loads((path / MANIFEST_FILENAME).read_text())
        state = detector.state_dict()
        dropped = dict(state["arrays"])
        dropped.pop(sorted(dropped)[0])
        np.savez(path / manifest["arrays_file"], **dropped)
        with pytest.raises(ValueError):
            load_checkpoint(path)

    def test_interrupted_overwrite_keeps_previous_checkpoint(
            self, small_dataset, live_config, tmp_path):
        """A crash before the manifest replace must not lose the old save."""
        chunks = _chunks(small_dataset)
        detector = StreamingNetworkDetector(live_config)
        for chunk in chunks[:3]:
            detector.process_chunk(chunk)
        path = save_checkpoint(detector, tmp_path / "ckpt")
        bins_at_save = detector.report.n_bins_processed

        # Simulate a second save dying between the arrays landing and the
        # manifest replace: a new content-addressed npz exists, but the
        # manifest still references (and checksums) the old one.
        detector.process_chunk(chunks[3])
        orphan = detector.state_dict()["arrays"]
        np.savez(path / (ARRAYS_FILENAME_PREFIX + "deadbeef.npz"), **orphan)

        restored = load_checkpoint(path)
        assert restored.report.n_bins_processed == bins_at_save


class TestCheckpointLineage:
    """A checkpoint directory belongs to one detector run: overwriting a
    foreign run's checkpoint (and GCing its arrays) must be refused."""

    def _trained(self, small_dataset, live_config, n_chunks=2):
        detector = StreamingNetworkDetector(live_config)
        for chunk in _chunks(small_dataset)[:n_chunks]:
            detector.process_chunk(chunk)
        return detector

    def test_manifest_records_the_run_id(self, small_dataset, live_config,
                                         tmp_path):
        detector = self._trained(small_dataset, live_config)
        path = save_checkpoint(detector, tmp_path / "ckpt")
        manifest = json.loads((path / MANIFEST_FILENAME).read_text())
        assert manifest["meta"]["run_id"] == detector.run_id

    def test_foreign_detector_is_refused(self, small_dataset, live_config,
                                         tmp_path):
        owner = self._trained(small_dataset, live_config)
        save_checkpoint(owner, tmp_path / "ckpt")
        arrays_before = sorted(
            p.name for p in (tmp_path / "ckpt").glob("state-*.npz"))

        intruder = self._trained(small_dataset, live_config)
        with pytest.raises(ValueError, match="different detector run"):
            save_checkpoint(intruder, tmp_path / "ckpt")
        # The owner's checkpoint survived untouched and still loads.
        arrays_after = sorted(
            p.name for p in (tmp_path / "ckpt").glob("state-*.npz"))
        assert arrays_after == arrays_before
        assert load_checkpoint(tmp_path / "ckpt").run_id == owner.run_id

    def test_same_detector_may_overwrite(self, small_dataset, live_config,
                                         tmp_path):
        chunks = _chunks(small_dataset)
        detector = StreamingNetworkDetector(live_config)
        detector.process_chunk(chunks[0])
        save_checkpoint(detector, tmp_path / "ckpt")
        detector.process_chunk(chunks[1])
        save_checkpoint(detector, tmp_path / "ckpt")  # no refusal
        restored = load_checkpoint(tmp_path / "ckpt")
        assert restored.report.n_bins_processed == 2 * CHUNK

    def test_restored_detector_continues_the_lineage(self, small_dataset,
                                                     live_config, tmp_path):
        chunks = _chunks(small_dataset)
        original = self._trained(small_dataset, live_config)
        save_checkpoint(original, tmp_path / "ckpt")

        restored = StreamingNetworkDetector.restore(tmp_path / "ckpt")
        assert restored.run_id == original.run_id
        restored.process_chunk(chunks[2])
        save_checkpoint(restored, tmp_path / "ckpt")  # same run: allowed

    def test_legacy_manifest_without_run_id_stays_overwritable(
            self, small_dataset, live_config, tmp_path):
        owner = self._trained(small_dataset, live_config)
        path = save_checkpoint(owner, tmp_path / "ckpt")
        manifest = json.loads((path / MANIFEST_FILENAME).read_text())
        del manifest["meta"]["run_id"]  # pre-lineage format
        (path / MANIFEST_FILENAME).write_text(json.dumps(manifest))

        other = self._trained(small_dataset, live_config)
        save_checkpoint(other, path)  # compatibility: no refusal
        assert load_checkpoint(path).run_id == other.run_id

    def test_unreadable_manifest_is_overwritable(self, small_dataset,
                                                 live_config, tmp_path):
        (tmp_path / "ckpt").mkdir()
        (tmp_path / "ckpt" / MANIFEST_FILENAME).write_text("{corrupt")
        detector = self._trained(small_dataset, live_config)
        save_checkpoint(detector, tmp_path / "ckpt")
        assert load_checkpoint(tmp_path / "ckpt").run_id == detector.run_id

    def test_hierarchical_saves_keep_one_lineage(self, small_dataset,
                                                 live_config, tmp_path):
        """Every hierarchical save goes through a throwaway merged flat
        detector; the checkpoint must carry the hierarchy's own stable id,
        so its repeated saves pass the lineage check."""
        from repro.streaming.hierarchy import HierarchicalNetworkDetector

        chunks = _chunks(small_dataset)
        hierarchy = HierarchicalNetworkDetector(live_config, n_pops=2)
        hierarchy.process_chunk(chunks[0])
        path = save_checkpoint(hierarchy, tmp_path / "ckpt")
        manifest = json.loads((path / MANIFEST_FILENAME).read_text())
        assert manifest["meta"]["run_id"] == hierarchy.run_id

        hierarchy.process_chunk(chunks[1])
        save_checkpoint(hierarchy, path)  # same hierarchy: allowed

        foreign = self._trained(small_dataset, live_config, n_chunks=1)
        with pytest.raises(ValueError, match="different detector run"):
            save_checkpoint(foreign, path)


class TestGenerationsAndFallback:
    """Fallback chains: keep N verified generations, walk back past rot."""

    def _save_n(self, dataset, config, directory, n_saves,
                keep_generations=3):
        detector = StreamingNetworkDetector(config)
        chunks = _chunks(dataset)
        per_save = max(1, len(chunks) // (n_saves + 1))
        for index, chunk in enumerate(chunks[:n_saves * per_save], start=1):
            detector.process_chunk(chunk)
            if index % per_save == 0:
                save_checkpoint(detector, directory,
                                keep_generations=keep_generations)
        return detector

    def test_save_keeps_last_n_generations(self, small_dataset, live_config,
                                           tmp_path):
        directory = tmp_path / "ckpt"
        self._save_n(small_dataset, live_config, directory, n_saves=5,
                     keep_generations=3)
        generation_manifests = sorted(directory.glob("manifest-*.json"))
        assert len(generation_manifests) == 3
        assert newest_generation(directory) == 5
        # Each retained generation's arrays file is still on disk; no
        # orphaned npz files from dropped generations linger.
        referenced = {
            json.loads(path.read_text())["arrays_file"]
            for path in generation_manifests}
        on_disk = {path.name
                   for path in directory.glob(ARRAYS_FILENAME_PREFIX + "*")}
        assert referenced <= on_disk
        assert len(on_disk) <= 3

    def test_fallback_restores_previous_generation(self, small_dataset,
                                                   live_config, tmp_path):
        directory = tmp_path / "ckpt"
        self._save_n(small_dataset, live_config, directory, n_saves=3)
        newest = json.loads(
            (directory / MANIFEST_FILENAME).read_text())
        # Bit-rot the newest arrays payload.
        victim = directory / newest["arrays_file"]
        payload = bytearray(victim.read_bytes())
        payload[len(payload) // 2] ^= 0xFF
        victim.write_bytes(bytes(payload))

        with pytest.raises(ValueError):
            load_checkpoint(directory)  # strict load still fails fast
        registry = MetricsRegistry()
        restored = load_checkpoint(directory, fallback=True,
                                   registry=registry)
        assert (restored.report.n_bins_processed
                < newest["meta"]["report"]["n_bins_processed"])
        assert registry.value("checkpoint_fallbacks") == 1
        assert registry.value("checkpoints_quarantined") >= 1

    def test_fallback_quarantines_instead_of_deleting(self, small_dataset,
                                                      live_config, tmp_path):
        directory = tmp_path / "ckpt"
        self._save_n(small_dataset, live_config, directory, n_saves=2)
        manifest = json.loads((directory / MANIFEST_FILENAME).read_text())
        victim = directory / manifest["arrays_file"]
        original_bytes = victim.read_bytes()
        victim.write_bytes(original_bytes[:len(original_bytes) // 2])
        load_checkpoint(directory, fallback=True)
        quarantine = directory / QUARANTINE_DIRNAME
        quarantined = list(quarantine.iterdir())
        assert quarantined, "corrupt files must be preserved in quarantine"
        assert any(manifest["arrays_file"] in path.name
                   for path in quarantined)
        # Subsequent saves ignore the quarantine directory entirely.
        detector = load_checkpoint(directory, fallback=True)
        save_checkpoint(detector, directory)
        assert set(quarantine.iterdir()) == set(quarantined)

    def test_fallback_with_everything_corrupt_raises(self, small_dataset,
                                                     live_config, tmp_path):
        directory = tmp_path / "ckpt"
        self._save_n(small_dataset, live_config, directory, n_saves=2)
        for manifest_path in list(directory.glob("manifest*.json")):
            manifest_path.write_text("{ torn", encoding="utf-8")
        with pytest.raises(ValueError, match="every candidate failed"):
            load_checkpoint(directory, fallback=True)

    def test_restored_generation_resumes_with_parity(self, small_dataset,
                                                     live_config, tmp_path,
                                                     uninterrupted):
        directory = tmp_path / "ckpt"
        chunks = _chunks(small_dataset)
        detector = StreamingNetworkDetector(live_config)
        for index, chunk in enumerate(chunks, start=1):
            detector.process_chunk(chunk)
            if index == 4 or index == 6:
                save_checkpoint(detector, directory)
            if index == 7:
                break
        manifest = json.loads((directory / MANIFEST_FILENAME).read_text())
        victim = directory / manifest["arrays_file"]
        victim.write_bytes(victim.read_bytes()[: victim.stat().st_size // 2])
        restored = load_checkpoint(directory, fallback=True)
        assert restored.report.n_chunks_processed == 4
        for chunk in chunks[4:]:
            restored.process_chunk(chunk)
        report = restored.finish()
        assert event_parity(uninterrupted.events, report.events).exact

    def test_has_checkpoint(self, small_dataset, live_config, tmp_path):
        directory = tmp_path / "ckpt"
        assert has_checkpoint(directory) is False
        self._save_n(small_dataset, live_config, directory, n_saves=1)
        assert has_checkpoint(directory) is True
        # A directory holding only generation manifests still counts.
        (directory / MANIFEST_FILENAME).unlink()
        assert has_checkpoint(directory) is True
