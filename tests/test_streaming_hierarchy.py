"""Parity suite for the hierarchical (per-PoP leaves + global) detector.

The standard is the same as for every other driver in this repo: the
hierarchy may only change *where* state lives, never an event.  A 2-level
run over the identical chunk sequence must emit the identical report a
flat ``stream_detect`` emits, for any PoP count and any routing, and its
checkpoints must restore as ordinary flat detectors that finish the
stream with the identical remaining events.
"""

import numpy as np
import pytest

from repro.evaluation import event_parity, report_parity
from repro.flows.timeseries import TrafficType
from repro.streaming import (
    HierarchicalNetworkDetector,
    StreamingConfig,
    StreamingNetworkDetector,
    TrafficChunk,
    chunk_series,
    stream_detect,
)

CHUNK = 48


@pytest.fixture(scope="module")
def live_config():
    return StreamingConfig(min_train_bins=128, recalibrate_every_bins=32)


@pytest.fixture(scope="module")
def baseline_report(small_dataset, live_config):
    return stream_detect(chunk_series(small_dataset.series, CHUNK),
                         live_config)


def run_hierarchy(chunks, config, n_pops=None, pops=None):
    detector = HierarchicalNetworkDetector(config, n_pops=n_pops)
    for i, chunk in enumerate(chunks):
        detector.process_chunk(chunk, pop=None if pops is None else pops[i])
    return detector


class TestHierarchyParity:
    @pytest.mark.parametrize("n_pops", [1, 2, 4])
    def test_pop_counts_reproduce_flat_event_list(
            self, small_dataset, live_config, baseline_report, n_pops):
        detector = run_hierarchy(chunk_series(small_dataset.series, CHUNK),
                                 live_config, n_pops=n_pops)
        report = detector.finish()
        parity = event_parity(baseline_report.events, report.events)
        assert parity.exact, parity.to_dict()
        full = report_parity(baseline_report, report)
        assert all(full["equal"].values()), full["equal"]

    def test_routing_does_not_change_events(self, small_dataset, live_config,
                                            baseline_report):
        # Skewed explicit routing (PoP 0 hoards most chunks) vs the default
        # round-robin: the merge is order-free, so events cannot differ.
        chunks = list(chunk_series(small_dataset.series, CHUNK))
        skewed = [0 if i % 3 else 1 for i in range(len(chunks))]
        report = run_hierarchy(chunks, live_config, n_pops=2,
                               pops=skewed).finish()
        assert event_parity(baseline_report.events, report.events).exact

    def test_n_pops_defaults_from_config(self, small_dataset,
                                         baseline_report):
        config = StreamingConfig(min_train_bins=128,
                                 recalibrate_every_bins=32, n_pops=3)
        detector = run_hierarchy(chunk_series(small_dataset.series, CHUNK),
                                 config)
        assert detector.n_pops == 3
        report = detector.finish()
        assert event_parity(baseline_report.events, report.events).exact

    def test_sharded_leaves_merge_cleanly(self, small_dataset,
                                          baseline_report):
        # Column-sharded leaf engines are assembled before the fold.
        config = StreamingConfig(min_train_bins=128,
                                 recalibrate_every_bins=32, n_shards=3)
        report = run_hierarchy(chunk_series(small_dataset.series, CHUNK),
                               config, n_pops=2).finish()
        assert event_parity(baseline_report.events, report.events).exact

    def test_leaves_only_hold_their_share(self, small_dataset, live_config):
        chunks = list(chunk_series(small_dataset.series, CHUNK))
        detector = run_hierarchy(chunks, live_config, n_pops=2)
        per_leaf = [detector.leaf(k).detector(TrafficType.BYTES)
                    .engine.n_bins_seen for k in range(2)]
        total = sum(chunk.n_bins for chunk in chunks)
        assert sum(per_leaf) == total
        assert all(0 < bins < total for bins in per_leaf)
        merged = detector.global_detector(TrafficType.BYTES).engine
        assert merged.n_bins_seen == total


class TestHierarchyCheckpoint:
    def test_checkpoint_restores_flat_and_finishes_identically(
            self, small_dataset, live_config, baseline_report, tmp_path):
        chunks = list(chunk_series(small_dataset.series, CHUNK))
        cut = len(chunks) // 2
        detector = HierarchicalNetworkDetector(live_config, n_pops=2)
        for chunk in chunks[:cut]:
            detector.process_chunk(chunk)
        detector.save(tmp_path)

        restored = StreamingNetworkDetector.restore(tmp_path)
        assert restored.report.n_chunks_processed == cut
        for chunk in chunks[cut:]:
            restored.process_chunk(chunk)
        report = restored.finish()
        parity = event_parity(baseline_report.events, report.events)
        assert parity.exact, parity.to_dict()
        full = report_parity(baseline_report, report)
        assert all(full["equal"].values()), full["equal"]

    def test_to_network_detector_continues_in_process(
            self, small_dataset, live_config, baseline_report):
        chunks = list(chunk_series(small_dataset.series, CHUNK))
        cut = len(chunks) // 3
        detector = HierarchicalNetworkDetector(live_config, n_pops=2)
        for chunk in chunks[:cut]:
            detector.process_chunk(chunk)
        flat = detector.to_network_detector()
        for chunk in chunks[cut:]:
            flat.process_chunk(chunk)
        report = flat.finish()
        assert event_parity(baseline_report.events, report.events).exact


class TestHierarchyValidation:
    def test_forgetting_is_rejected(self):
        config = StreamingConfig(forgetting=0.99)
        with pytest.raises(ValueError, match="order-free"):
            HierarchicalNetworkDetector(config, n_pops=2)

    def test_identify_required(self):
        with pytest.raises(ValueError, match="identified OD flows"):
            HierarchicalNetworkDetector(StreamingConfig(identify=False))

    def test_pop_bounds(self, live_config):
        detector = HierarchicalNetworkDetector(live_config, n_pops=2)
        rng = np.random.default_rng(0)
        chunk = TrafficChunk(start_bin=0, matrices={
            TrafficType.BYTES: rng.random((8, 4)) + 1.0})
        with pytest.raises(ValueError, match="pop must lie"):
            detector.process_chunk(chunk, pop=2)
        with pytest.raises(ValueError):
            HierarchicalNetworkDetector(live_config, n_pops=0)

    def test_global_engine_rejects_direct_ingest(self, live_config):
        detector = HierarchicalNetworkDetector(live_config, n_pops=2)
        rng = np.random.default_rng(1)
        chunk = TrafficChunk(start_bin=0, matrices={
            TrafficType.BYTES: rng.random((8, 4)) + 1.0})
        detector.process_chunk(chunk)
        merged = detector.global_detector(TrafficType.BYTES).engine
        with pytest.raises(NotImplementedError, match="merged view"):
            merged.partial_fit(chunk.matrix(TrafficType.BYTES))


class TestLeafQuarantine:
    def test_explicit_quarantine_and_reintegration(self, small_dataset,
                                                   live_config):
        detector = HierarchicalNetworkDetector(live_config, n_pops=3)
        assert detector.coverage == 1.0
        assert detector.quarantined_pops == frozenset()
        detector.quarantine_leaf(2)
        detector.quarantine_leaf(2)  # idempotent
        assert detector.quarantined_pops == frozenset({2})
        assert detector.coverage == pytest.approx(2.0 / 3.0)
        detector.reintegrate_leaf(2)
        detector.reintegrate_leaf(2)  # idempotent
        assert detector.quarantined_pops == frozenset()
        assert detector.coverage == 1.0
        with pytest.raises(ValueError):
            detector.quarantine_leaf(3)
        with pytest.raises(ValueError):
            detector.reintegrate_leaf(-1)

    def test_deadline_validation(self, live_config):
        with pytest.raises(ValueError):
            HierarchicalNetworkDetector(live_config, n_pops=2,
                                        leaf_deadline_bins=0)

    def test_watermark_deadline_auto_quarantines(self, small_dataset,
                                                 live_config):
        chunks = list(chunk_series(small_dataset.series, CHUNK))
        detector = HierarchicalNetworkDetector(
            live_config, n_pops=2, leaf_deadline_bins=CHUNK)
        # Both pops healthy for two rounds...
        detector.process_chunk(chunks[0], pop=0)
        detector.process_chunk(chunks[1], pop=1)
        assert detector.quarantined_pops == frozenset()
        # ...then pop 1 goes silent; once the watermark runs more than
        # leaf_deadline_bins ahead of its last chunk it is quarantined.
        detector.process_chunk(chunks[2], pop=0)
        detector.process_chunk(chunks[3], pop=0)
        assert detector.quarantined_pops == frozenset({1})
        assert detector.coverage == 0.5
        # The silent pop producing again reintegrates it automatically.
        detector.process_chunk(chunks[4], pop=1)
        assert detector.quarantined_pops == frozenset()
        assert detector.coverage == 1.0

    def test_quarantined_leaf_excluded_from_global_model(self, small_dataset,
                                                         live_config):
        chunks = list(chunk_series(small_dataset.series, CHUNK))
        healthy = [c for i, c in enumerate(chunks) if i % 2 == 0]
        flat_over_healthy = stream_detect(iter(healthy), live_config)
        hierarchy = HierarchicalNetworkDetector(
            live_config, n_pops=2, leaf_deadline_bins=2 * CHUNK)
        for chunk in healthy:
            hierarchy.process_chunk(chunk, pop=0)
        report = hierarchy.finish()
        parity = event_parity(flat_over_healthy.events, report.events)
        assert parity.exact, parity.to_dict()

    def test_quarantine_counters_in_registry(self, small_dataset):
        config = StreamingConfig(min_train_bins=128,
                                 recalibrate_every_bins=32, telemetry=True)
        detector = HierarchicalNetworkDetector(config, n_pops=2)
        for chunk in list(chunk_series(small_dataset.series, CHUNK))[:2]:
            detector.process_chunk(chunk)
        detector.quarantine_leaf(1)
        registry = detector.telemetry.registry
        assert registry.value("leaf_quarantines") == 1
        assert registry.value("quarantined_leaves") == 1.0
        assert registry.value("hierarchy_coverage") == 0.5
        detector.reintegrate_leaf(1)
        assert registry.value("leaf_reintegrations") == 1
        assert registry.value("quarantined_leaves") == 0.0
        assert registry.value("hierarchy_coverage") == 1.0
