"""The low-rank eigenbasis tracker: accuracy properties and integration.

The tracker promises three things, each tested here:

1. **Principal-angle accuracy** — under random streams with a dominant
   low-dimensional signal (the paper's OD-flow regime), the tracked
   top-``k`` subspace stays within a small principal angle of the exact
   engine's, for any chunking, with and without forgetting.
2. **Exact residual-energy trace** — the tracked eigenvalue mass plus the
   residual scalar equals the exact engine's scatter trace to float
   round-off, so the SPE limit's ``φ₁`` is exact in expectation.
3. **Drop-in integration** — detector calibration consumes the maintained
   basis directly, checkpoints round-trip bitwise with restart parity,
   ``merge_online_pca`` dispatches the small-core merge, and
   ``compress_engine`` bridges from the exact/sharded engines.
"""

import numpy as np
import pytest

from repro.evaluation import event_parity, report_parity
from repro.streaming import (
    LowRankEigenTracker,
    OnlinePCA,
    ShardedOnlinePCA,
    StreamingConfig,
    StreamingNetworkDetector,
    StreamingSubspaceDetector,
    chunk_series,
    compress_engine,
    make_engine,
    merge_low_rank,
    merge_online_pca,
    stream_detect,
)

#: Number of seeded randomized draws per property.
N_TRIALS = 8
#: Tracked signal dimensionality of the synthetic streams.
SIGNAL_RANK = 6
#: Principal-angle ceiling (max sin θ) for the tracked top-k subspace, with
#: rank slack over a well-separated signal spectrum.  Measured values sit
#: around 1e-8; the ceiling leaves three orders of slack for unlucky seeds.
MAX_SIN_ANGLE = 1e-5
#: Relative ceiling on top-eigenvalue error vs the exact engine.
MAX_EIGVAL_RTOL = 1e-9


def _signal_stream(rng, n_bins, n_features, noise=0.01):
    """A stream with a dominant rank-``SIGNAL_RANK`` signal plus noise."""
    amplitudes = np.linspace(10.0, 3.0, SIGNAL_RANK)
    mixing = rng.normal(size=(SIGNAL_RANK, n_features)) * amplitudes[:, None]
    latent = rng.normal(size=(n_bins, SIGNAL_RANK))
    return latent @ mixing + 25.0 + noise * rng.normal(size=(n_bins, n_features))


def _random_chunks(rng, matrix):
    """Split a stream at random boundaries (chunks of >= 1 bin)."""
    n = matrix.shape[0]
    n_cuts = int(rng.integers(1, 8))
    cuts = sorted(rng.choice(np.arange(1, n), size=n_cuts, replace=False))
    bounds = [0] + [int(c) for c in cuts] + [n]
    return [matrix[a:b] for a, b in zip(bounds[:-1], bounds[1:])]


def _max_sin_angle(axes_a, axes_b, k):
    """Largest principal-angle sine between two k-dimensional subspaces."""
    cosines = np.linalg.svd(axes_a[:, :k].T @ axes_b[:, :k], compute_uv=False)
    return float(np.sqrt(max(0.0, 1.0 - min(cosines) ** 2)))


def _scatter_trace(engine):
    """Scatter-scale trace of an exact engine's maintained matrix."""
    return float(np.trace(engine.covariance())) * (engine.weight_sum - 1.0)


class TestPrincipalAngleProperty:
    @pytest.mark.parametrize("forgetting", [1.0, 0.995, 0.95])
    def test_tracked_subspace_matches_exact_engine(self, forgetting):
        rng = np.random.default_rng(20040404)
        for trial in range(N_TRIALS):
            p = int(rng.integers(20, 80))
            matrix = _signal_stream(rng, int(rng.integers(80, 300)), p)
            exact = OnlinePCA(forgetting=forgetting)
            tracker = LowRankEigenTracker(rank=SIGNAL_RANK + 6,
                                          forgetting=forgetting)
            for chunk in _random_chunks(rng, matrix):
                exact.partial_fit(chunk)
                tracker.partial_fit(chunk)
            exact_values, exact_axes = exact.eigenbasis()
            values, axes = tracker.eigenbasis()
            assert _max_sin_angle(exact_axes, axes, SIGNAL_RANK) < MAX_SIN_ANGLE
            np.testing.assert_allclose(values[:SIGNAL_RANK],
                                       exact_values[:SIGNAL_RANK],
                                       rtol=MAX_EIGVAL_RTOL)
            # Identical Chan bookkeeping: mean and weights are bit-equal.
            np.testing.assert_array_equal(tracker.mean, exact.mean)
            assert tracker.weight_sum == exact.weight_sum
            assert tracker.n_samples == exact.n_samples

    @pytest.mark.parametrize("forgetting", [1.0, 0.98])
    def test_residual_energy_trace_is_exact(self, forgetting):
        rng = np.random.default_rng(19791010)
        for trial in range(N_TRIALS):
            matrix = _signal_stream(rng, 150, int(rng.integers(20, 60)))
            exact = OnlinePCA(forgetting=forgetting)
            tracker = LowRankEigenTracker(rank=SIGNAL_RANK + 2,
                                          forgetting=forgetting)
            for chunk in _random_chunks(rng, matrix):
                exact.partial_fit(chunk)
                tracker.partial_fit(chunk)
            tracked = float(np.sum(tracker.eigenbasis()[0]
                                   * (tracker.weight_sum - 1.0)))
            np.testing.assert_allclose(tracked, _scatter_trace(exact),
                                       rtol=1e-10)
            assert tracker.residual_energy >= 0.0

    def test_residual_spectrum_mass_matches_exact_phi1(self):
        """The SPE limit's φ₁ (residual eigenvalue sum) is exact."""
        rng = np.random.default_rng(3)
        matrix = _signal_stream(rng, 200, 50)
        exact, tracker = OnlinePCA(), LowRankEigenTracker(rank=10)
        exact.partial_fit(matrix)
        tracker.partial_fit(matrix)
        n_normal = 4
        exact_phi1 = float(np.sum(exact.eigenbasis()[0][n_normal:]))
        tracker_phi1 = float(np.sum(tracker.eigenbasis()[0][n_normal:]))
        np.testing.assert_allclose(tracker_phi1, exact_phi1, rtol=1e-9)

    def test_full_rank_tracking_is_exact(self):
        """With r = p the tracker IS the exact eigendecomposition."""
        rng = np.random.default_rng(11)
        matrix = _signal_stream(rng, 120, 12)
        exact, tracker = OnlinePCA(), LowRankEigenTracker(rank=12)
        for chunk in (matrix[:50], matrix[50:]):
            exact.partial_fit(chunk)
            tracker.partial_fit(chunk)
        exact_values, _ = exact.eigenbasis()
        values, _ = tracker.eigenbasis()
        np.testing.assert_allclose(values[:tracker.tracked_rank],
                                   exact_values[:tracker.tracked_rank],
                                   rtol=1e-8, atol=1e-9)
        assert tracker.residual_energy <= 1e-6 * values[0]


class TestDriftMonitor:
    def test_zero_tolerance_reorthogonalizes_every_update(self):
        rng = np.random.default_rng(5)
        tracker = LowRankEigenTracker(rank=8, drift_tolerance=0.0)
        for _ in range(5):
            tracker.partial_fit(_signal_stream(rng, 20, 30))
        assert tracker.n_reorthogonalizations >= 4
        basis = tracker.eigenbasis()[1]
        gram = basis.T @ basis
        np.testing.assert_allclose(gram, np.eye(gram.shape[0]), atol=1e-12)

    def test_loose_tolerance_never_fires_but_basis_stays_orthonormal(self):
        rng = np.random.default_rng(6)
        tracker = LowRankEigenTracker(rank=8, drift_tolerance=1.0)
        for _ in range(40):
            tracker.partial_fit(_signal_stream(rng, 10, 25))
        assert tracker.n_reorthogonalizations == 0
        basis = tracker.eigenbasis()[1]
        gram = basis.T @ basis
        # Drift accumulates without the monitor but stays tiny over 40
        # updates; the monitor exists for month-long streams.
        np.testing.assert_allclose(gram, np.eye(gram.shape[0]), atol=1e-8)

    def test_reorthogonalization_preserves_trace(self):
        rng = np.random.default_rng(7)
        loose = LowRankEigenTracker(rank=8, drift_tolerance=1.0)
        eager = LowRankEigenTracker(rank=8, drift_tolerance=0.0)
        for _ in range(10):
            chunk = _signal_stream(rng, 15, 30)
            loose.partial_fit(chunk)
            eager.partial_fit(chunk)
        def total(tracker):
            return (float(np.sum(tracker.state_dict()["arrays"]["eigenvalues"]))
                    + tracker.residual_energy)
        np.testing.assert_allclose(total(eager), total(loose), rtol=1e-10)


class TestRankEdgeCases:
    def test_rank_deficient_chunks_yield_partial_basis(self):
        """Constant / repeated-row chunks must not fabricate spectrum."""
        tracker = LowRankEigenTracker(rank=6)
        tracker.partial_fit(np.zeros((10, 8)))         # zero variance
        assert tracker.tracked_rank == 0
        assert tracker.rank == 0
        row = np.arange(8.0)
        tracker.partial_fit(np.tile(row, (5, 1)) * np.arange(1, 6)[:, None])
        # One direction of variance: all rows (and the Chan mean-shift
        # against the zero first segment) are multiples of `row`.
        assert tracker.tracked_rank == 1
        values, axes = tracker.eigenbasis()
        assert axes.shape == (8, 1)
        assert np.count_nonzero(values[:1] > 0) == 1

    def test_detector_stays_untrainable_until_rank_exceeds_n_normal(self):
        config = StreamingConfig(n_normal=2, min_train_bins=4, identify=False,
                                 engine="lowrank", rank_slack=2)
        detector = StreamingSubspaceDetector(config)
        result = detector.process_chunk(np.ones((8, 6)))   # rank 0
        assert result.warmup and detector.snapshot is None
        rng = np.random.default_rng(8)
        detector.process_chunk(_signal_stream(rng, 16, 6))
        assert detector.snapshot is not None

    def test_rank_below_n_normal_is_rejected_up_front(self):
        """An explicitly undersized engine (r < k) fails loudly, not quietly
        (without the check it would sit in warmup forever)."""
        config = StreamingConfig(n_normal=4, min_train_bins=4, identify=False)
        with pytest.raises(ValueError, match="eigenpairs"):
            StreamingSubspaceDetector(config, engine=LowRankEigenTracker(rank=2))
        with pytest.raises(ValueError, match="eigenpairs"):
            StreamingSubspaceDetector(config, engine=LowRankEigenTracker(rank=4))

    def test_config_rejects_invalid_lowrank_knobs(self):
        with pytest.raises(ValueError, match="rank_slack"):
            StreamingConfig(engine="lowrank", rank_slack=0)
        with pytest.raises(ValueError, match="engine"):
            StreamingConfig(engine="svd")
        with pytest.raises(ValueError, match="drift_tolerance"):
            StreamingConfig(engine="lowrank", drift_tolerance=-1.0)
        with pytest.raises(ValueError, match="sharding"):
            StreamingConfig(engine="lowrank", n_shards=2)
        with pytest.raises(ValueError, match="rank"):
            LowRankEigenTracker(rank=0)

    def test_rank_cap_clamps_to_feature_count(self):
        tracker = LowRankEigenTracker(rank=50)
        rng = np.random.default_rng(10)
        tracker.partial_fit(_signal_stream(rng, 60, 5))
        assert tracker.rank_limit == 5
        assert tracker.tracked_rank <= 5


class TestRecalibrationStaleness:
    """Boundary behavior of the recalibrate_every_bins cadence."""

    @pytest.mark.parametrize("engine", ["exact", "lowrank"])
    def test_exactly_at_threshold_recalibrates(self, engine):
        rng = np.random.default_rng(12)
        config = StreamingConfig(n_normal=2, min_train_bins=8,
                                 recalibrate_every_bins=16, identify=False,
                                 engine=engine, rank_slack=4)
        detector = StreamingSubspaceDetector(config)
        detector.process_chunk(_signal_stream(rng, 16, 10))
        first = detector.snapshot
        assert first is not None
        # 15 new bins: strictly below the threshold -> same snapshot.
        detector.process_chunk(_signal_stream(rng, 15, 10))
        assert detector.snapshot is first
        # 1 more bin: exactly 16 bins since calibration -> new snapshot.
        detector.process_chunk(_signal_stream(rng, 1, 10))
        assert detector.snapshot is not first

    def test_one_recalibrates_on_every_chunk(self):
        rng = np.random.default_rng(13)
        config = StreamingConfig(n_normal=2, min_train_bins=8,
                                 recalibrate_every_bins=1, identify=False,
                                 engine="lowrank", rank_slack=4)
        detector = StreamingSubspaceDetector(config)
        detector.process_chunk(_signal_stream(rng, 12, 10))
        snapshots = [detector.snapshot]
        for _ in range(3):
            detector.process_chunk(_signal_stream(rng, 4, 10))
            snapshots.append(detector.snapshot)
        assert all(a is not b for a, b in zip(snapshots[:-1], snapshots[1:]))


class TestLowRankMerge:
    def test_merge_matches_single_tracker_over_segments(self):
        rng = np.random.default_rng(14)
        for forgetting in (1.0, 0.99):
            matrix = _signal_stream(rng, 160, 40)
            first = LowRankEigenTracker(rank=12, forgetting=forgetting)
            second = LowRankEigenTracker(rank=12, forgetting=forgetting)
            whole = LowRankEigenTracker(rank=12, forgetting=forgetting)
            first.partial_fit(matrix[:90])
            second.partial_fit(matrix[90:])
            whole.partial_fit(matrix[:90])
            whole.partial_fit(matrix[90:])
            merged = merge_low_rank(first, second)
            np.testing.assert_allclose(merged.mean, whole.mean, rtol=1e-12)
            assert merged.weight_sum == pytest.approx(whole.weight_sum)
            assert merged.n_bins_seen == whole.n_bins_seen
            merged_values, merged_axes = merged.eigenbasis()
            whole_values, whole_axes = whole.eigenbasis()
            assert _max_sin_angle(whole_axes, merged_axes, 4) < MAX_SIN_ANGLE
            np.testing.assert_allclose(merged_values[:SIGNAL_RANK],
                                       whole_values[:SIGNAL_RANK], rtol=1e-7)
            # Trace stays exact through the merge.
            np.testing.assert_allclose(
                float(np.sum(merged_values)) * (merged.weight_sum - 1.0),
                float(np.sum(whole_values)) * (whole.weight_sum - 1.0),
                rtol=1e-10)

    def test_merge_online_pca_dispatches_low_rank_pairs(self):
        rng = np.random.default_rng(15)
        matrix = _signal_stream(rng, 100, 20)
        first, second = LowRankEigenTracker(rank=8), LowRankEigenTracker(rank=8)
        first.partial_fit(matrix[:50])
        second.partial_fit(matrix[50:])
        merged = merge_online_pca(first, second)
        assert isinstance(merged, LowRankEigenTracker)
        reference = merge_low_rank(first, second)
        np.testing.assert_array_equal(merged.eigenbasis()[1],
                                      reference.eigenbasis()[1])

    def test_merge_rejects_mixed_engine_kinds(self):
        rng = np.random.default_rng(16)
        matrix = _signal_stream(rng, 60, 10)
        exact, tracker = OnlinePCA(), LowRankEigenTracker(rank=6)
        exact.partial_fit(matrix)
        tracker.partial_fit(matrix)
        with pytest.raises(ValueError, match="compress"):
            merge_online_pca(exact, tracker)
        with pytest.raises(ValueError, match="compress"):
            merge_online_pca(tracker, exact)

    def test_merge_with_empty_tracker_is_identity(self):
        rng = np.random.default_rng(17)
        tracker = LowRankEigenTracker(rank=6)
        tracker.partial_fit(_signal_stream(rng, 40, 10))
        for merged in (merge_low_rank(tracker, LowRankEigenTracker(rank=6)),
                       merge_low_rank(LowRankEigenTracker(rank=6), tracker)):
            np.testing.assert_array_equal(merged.eigenbasis()[1],
                                          tracker.eigenbasis()[1])
            assert merged.weight_sum == tracker.weight_sum


class TestCompressEngine:
    def test_compress_exact_engine_keeps_top_pairs_and_trace(self):
        rng = np.random.default_rng(18)
        exact = OnlinePCA()
        exact.partial_fit(_signal_stream(rng, 120, 30))
        tracker = compress_engine(exact, rank=8)
        exact_values, exact_axes = exact.eigenbasis()
        values, axes = tracker.eigenbasis()
        np.testing.assert_allclose(values[:8], exact_values[:8], rtol=1e-12)
        np.testing.assert_allclose(np.abs(np.sum(axes * exact_axes[:, :8],
                                                 axis=0)), 1.0, rtol=1e-9)
        np.testing.assert_allclose(float(np.sum(values)),
                                   float(np.sum(exact_values)), rtol=1e-12)
        assert tracker.weight_sum == exact.weight_sum
        assert tracker.n_bins_seen == exact.n_bins_seen

    def test_compress_sharded_engine_then_continue_streaming(self):
        """The sharding interop: ingest sharded exactly, compress, continue."""
        rng = np.random.default_rng(19)
        matrix = _signal_stream(rng, 140, 24)
        sharded = ShardedOnlinePCA(n_shards=3)
        reference = LowRankEigenTracker(rank=10)
        sharded.partial_fit(matrix[:100])
        reference.partial_fit(matrix[:100])
        tracker = compress_engine(sharded, rank=10)
        tracker.partial_fit(matrix[100:])
        reference.partial_fit(matrix[100:])
        values, axes = tracker.eigenbasis()
        ref_values, ref_axes = reference.eigenbasis()
        assert _max_sin_angle(ref_axes, axes, 4) < MAX_SIN_ANGLE
        np.testing.assert_allclose(values[:SIGNAL_RANK],
                                   ref_values[:SIGNAL_RANK], rtol=1e-7)

    def test_compress_rejects_empty_engine(self):
        with pytest.raises(ValueError, match="no data"):
            compress_engine(OnlinePCA(), rank=4)


class TestDetectorIntegration:
    def test_make_engine_dispatch(self):
        assert isinstance(make_engine(StreamingConfig()), OnlinePCA)
        assert isinstance(make_engine(StreamingConfig(n_shards=3)),
                          ShardedOnlinePCA)
        engine = make_engine(StreamingConfig(engine="lowrank", n_normal=4,
                                             rank_slack=5))
        assert isinstance(engine, LowRankEigenTracker)
        assert engine.rank_limit == 9

    def test_live_detection_matches_exact_engine(self, small_dataset):
        """Same stream, exact vs low-rank engine: same events."""
        series = small_dataset.series
        exact_config = StreamingConfig(min_train_bins=128,
                                       recalibrate_every_bins=32)
        lowrank_config = StreamingConfig(min_train_bins=128,
                                         recalibrate_every_bins=32,
                                         engine="lowrank", rank_slack=12)
        exact = stream_detect(chunk_series(series, 48), exact_config)
        lowrank = stream_detect(chunk_series(series, 48), lowrank_config)
        parity = event_parity(exact.events, lowrank.events)
        # The tracked top subspace matches to ~1e-8, but the SPE limit sees
        # the isotropically spread tail (exact φ₁, approximate φ₂/φ₃), so
        # events whose statistic grazes the limit may differ; the bulk must
        # agree.  The week-scale floor is gated in benchmarks/.
        assert parity.span_recall >= 0.85
        assert lowrank.n_events >= 1
        assert lowrank.n_bins_processed == exact.n_bins_processed

    def test_state_roundtrip_continues_bitwise(self):
        rng = np.random.default_rng(21)
        tracker = LowRankEigenTracker(rank=8, forgetting=0.999)
        for _ in range(4):
            tracker.partial_fit(_signal_stream(rng, 25, 20))
        twin = LowRankEigenTracker.from_state(**tracker.state_dict())
        chunk = _signal_stream(rng, 25, 20)
        tracker.partial_fit(chunk)
        twin.partial_fit(chunk)
        np.testing.assert_array_equal(twin.eigenbasis()[1],
                                      tracker.eigenbasis()[1])
        np.testing.assert_array_equal(twin.eigenbasis()[0],
                                      tracker.eigenbasis()[0])
        assert twin.residual_energy == tracker.residual_energy
        assert twin.n_reorthogonalizations == tracker.n_reorthogonalizations

    def test_state_rejects_wrong_kind_and_shape(self):
        rng = np.random.default_rng(22)
        tracker = LowRankEigenTracker(rank=6)
        tracker.partial_fit(_signal_stream(rng, 40, 10))
        state = tracker.state_dict()
        with pytest.raises(ValueError, match="state"):
            LowRankEigenTracker.from_state(
                dict(state["meta"], kind="online_pca"), state["arrays"])
        bad = dict(state["arrays"])
        bad["basis"] = bad["basis"][:-1]
        with pytest.raises(ValueError, match="shape"):
            LowRankEigenTracker.from_state(state["meta"], bad)

    def test_checkpoint_restart_parity_with_lowrank_engine(
            self, small_dataset, tmp_path):
        """Restored mid-stream, the low-rank run finishes identically."""
        config = StreamingConfig(min_train_bins=128, recalibrate_every_bins=32,
                                 engine="lowrank", rank_slack=12)
        chunks = list(chunk_series(small_dataset.series, 48))
        reference = StreamingNetworkDetector(config)
        for chunk in chunks:
            reference.process_chunk(chunk)
        reference_report = reference.finish()

        detector = StreamingNetworkDetector(config)
        for chunk in chunks[:6]:
            detector.process_chunk(chunk)
        detector.save(tmp_path / "ckpt")
        restored = StreamingNetworkDetector.restore(tmp_path / "ckpt")
        assert restored.config.engine == "lowrank"
        for chunk in chunks[6:]:
            restored.process_chunk(chunk)
        report = restored.finish()
        full = report_parity(reference_report, report)
        assert all(full["equal"].values()), full["equal"]
