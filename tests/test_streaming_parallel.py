"""Parity and robustness tests for the multi-process chunk driver.

The driver may only change wall-clock time: its report (events, raw
detections, counters) must be identical to the single-process
``stream_detect`` run, for any worker count and queue depth.
"""

import numpy as np
import pytest

from repro.evaluation import event_parity, report_parity
from repro.flows.timeseries import TrafficType
from repro.streaming import (
    StreamingConfig,
    StreamingReport,
    TrafficChunk,
    chunk_series,
    parallel_stream_detect,
    stream_detect,
)

CHUNK = 48


@pytest.fixture(scope="module")
def live_config():
    return StreamingConfig(min_train_bins=128, recalibrate_every_bins=32)


@pytest.fixture(scope="module")
def baseline_report(small_dataset, live_config):
    return stream_detect(chunk_series(small_dataset.series, CHUNK),
                         live_config)


class TestParallelParity:
    @pytest.mark.parametrize("n_workers", [1, 2, 3])
    def test_worker_counts_reproduce_event_list(
            self, small_dataset, live_config, baseline_report, n_workers):
        report = parallel_stream_detect(
            chunk_series(small_dataset.series, CHUNK), live_config,
            n_workers=n_workers)
        parity = event_parity(baseline_report.events, report.events)
        assert parity.exact, parity.to_dict()
        full = report_parity(baseline_report, report)
        assert all(full["equal"].values()), full["equal"]

    def test_minimal_queue_depth_backpressure(self, small_dataset,
                                              live_config, baseline_report):
        report = parallel_stream_detect(
            chunk_series(small_dataset.series, CHUNK), live_config,
            n_workers=3, queue_depth=1)
        assert event_parity(baseline_report.events, report.events).exact

    def test_sharded_engines_inside_workers(self, small_dataset,
                                            baseline_report):
        config = StreamingConfig(min_train_bins=128,
                                 recalibrate_every_bins=32, n_shards=4)
        report = parallel_stream_detect(
            chunk_series(small_dataset.series, CHUNK), config, n_workers=3)
        assert event_parity(baseline_report.events, report.events).exact

    def test_single_traffic_type_subset(self, small_dataset, live_config):
        single = stream_detect(chunk_series(small_dataset.series, CHUNK),
                               live_config,
                               traffic_types=[TrafficType.BYTES])
        report = parallel_stream_detect(
            chunk_series(small_dataset.series, CHUNK), live_config,
            traffic_types=[TrafficType.BYTES], n_workers=2)
        assert event_parity(single.events, report.events).exact
        assert set(report.detections) <= {TrafficType.BYTES}

    def test_duplicate_traffic_types_are_deduped(self, small_dataset,
                                                 live_config):
        # Regression: a duplicated type must neither hang the fusion loop
        # nor fold chunks twice into one detector's moments.
        single = stream_detect(chunk_series(small_dataset.series, CHUNK),
                               live_config,
                               traffic_types=[TrafficType.BYTES])
        report = parallel_stream_detect(
            chunk_series(small_dataset.series, CHUNK), live_config,
            traffic_types=[TrafficType.BYTES, TrafficType.BYTES], n_workers=2)
        assert event_parity(single.events, report.events).exact


class TestParallelEdgeCases:
    def test_empty_stream(self, live_config):
        report = parallel_stream_detect(iter(()), live_config)
        assert isinstance(report, StreamingReport)
        assert report.n_chunks_processed == 0
        assert report.events == []

    def test_validation(self, live_config):
        with pytest.raises(ValueError):
            parallel_stream_detect(iter(()), live_config, queue_depth=0)
        with pytest.raises(ValueError):
            parallel_stream_detect(iter(()), live_config, n_workers=0)
        with pytest.raises(ValueError):
            parallel_stream_detect(iter(()), StreamingConfig(identify=False))

    def test_worker_failure_propagates(self, live_config):
        rng = np.random.default_rng(0)
        good = TrafficChunk(start_bin=0, matrices={
            TrafficType.BYTES: rng.random((16, 9)) + 1.0})
        bad = TrafficChunk(start_bin=16, matrices={
            TrafficType.BYTES: rng.random((16, 5)) + 1.0})  # wrong p
        with pytest.raises(RuntimeError, match="streaming worker failed"):
            parallel_stream_detect([good, bad], live_config)
