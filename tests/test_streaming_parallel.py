"""Parity and robustness tests for the multi-process chunk driver.

The driver may only change wall-clock time: its report (events, raw
detections, counters) must be identical to the single-process
``stream_detect`` run, for any worker count and queue depth.
"""

import dataclasses
import multiprocessing
import os
import threading
import time

import numpy as np
import pytest

from repro.evaluation import event_parity, report_parity
from repro.flows.timeseries import TrafficType
from repro.streaming import (
    StreamingConfig,
    StreamingNetworkDetector,
    StreamingReport,
    TrafficChunk,
    chunk_series,
    parallel_stream_detect,
    stream_detect,
)
from repro.streaming import parallel

CHUNK = 48


@pytest.fixture(scope="module")
def live_config():
    return StreamingConfig(min_train_bins=128, recalibrate_every_bins=32)


@pytest.fixture(scope="module")
def baseline_report(small_dataset, live_config):
    return stream_detect(chunk_series(small_dataset.series, CHUNK),
                         live_config)


class TestParallelParity:
    @pytest.mark.parametrize("n_workers", [1, 2, 3])
    def test_worker_counts_reproduce_event_list(
            self, small_dataset, live_config, baseline_report, n_workers):
        report = parallel_stream_detect(
            chunk_series(small_dataset.series, CHUNK), live_config,
            n_workers=n_workers)
        parity = event_parity(baseline_report.events, report.events)
        assert parity.exact, parity.to_dict()
        full = report_parity(baseline_report, report)
        assert all(full["equal"].values()), full["equal"]

    def test_minimal_queue_depth_backpressure(self, small_dataset,
                                              live_config, baseline_report):
        report = parallel_stream_detect(
            chunk_series(small_dataset.series, CHUNK), live_config,
            n_workers=3, queue_depth=1)
        assert event_parity(baseline_report.events, report.events).exact

    def test_sharded_engines_inside_workers(self, small_dataset,
                                            baseline_report):
        config = StreamingConfig(min_train_bins=128,
                                 recalibrate_every_bins=32, n_shards=4)
        report = parallel_stream_detect(
            chunk_series(small_dataset.series, CHUNK), config, n_workers=3)
        assert event_parity(baseline_report.events, report.events).exact

    def test_single_traffic_type_subset(self, small_dataset, live_config):
        single = stream_detect(chunk_series(small_dataset.series, CHUNK),
                               live_config,
                               traffic_types=[TrafficType.BYTES])
        report = parallel_stream_detect(
            chunk_series(small_dataset.series, CHUNK), live_config,
            traffic_types=[TrafficType.BYTES], n_workers=2)
        assert event_parity(single.events, report.events).exact
        assert set(report.detections) <= {TrafficType.BYTES}

    def test_duplicate_traffic_types_are_deduped(self, small_dataset,
                                                 live_config):
        # Regression: a duplicated type must neither hang the fusion loop
        # nor fold chunks twice into one detector's moments.
        single = stream_detect(chunk_series(small_dataset.series, CHUNK),
                               live_config,
                               traffic_types=[TrafficType.BYTES])
        report = parallel_stream_detect(
            chunk_series(small_dataset.series, CHUNK), live_config,
            traffic_types=[TrafficType.BYTES, TrafficType.BYTES], n_workers=2)
        assert event_parity(single.events, report.events).exact


class TestShardParallelParity:
    """mode="shard": K workers each own a column shard of every detector."""

    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_shard_worker_counts_reproduce_event_list(
            self, small_dataset, live_config, baseline_report, n_workers):
        report = parallel_stream_detect(
            chunk_series(small_dataset.series, CHUNK), live_config,
            n_workers=n_workers, mode="shard")
        parity = event_parity(baseline_report.events, report.events)
        assert parity.exact, parity.to_dict()
        full = report_parity(baseline_report, report)
        assert all(full["equal"].values()), full["equal"]

    def test_mode_defaults_from_config(self, small_dataset, baseline_report):
        config = StreamingConfig(min_train_bins=128,
                                 recalibrate_every_bins=32,
                                 parallel_mode="shard")
        report = parallel_stream_detect(
            chunk_series(small_dataset.series, CHUNK), config, n_workers=2)
        assert event_parity(baseline_report.events, report.events).exact

    def test_tight_bus_and_queue_backpressure(self, small_dataset,
                                              live_config, baseline_report):
        config = dataclasses.replace(live_config, bus_slots=2,
                                     poll_seconds=0.05)
        report = parallel_stream_detect(
            chunk_series(small_dataset.series, CHUNK), config,
            n_workers=2, queue_depth=1, mode="shard")
        assert event_parity(baseline_report.events, report.events).exact

    def test_more_workers_than_od_flows(self, live_config):
        # p = 4 OD flows, 6 workers: trailing shards own zero columns.
        rng = np.random.default_rng(3)
        chunks = [TrafficChunk(start_bin=32 * i, matrices={
            TrafficType.BYTES: rng.random((32, 4)) + 1.0})
            for i in range(8)]
        config = StreamingConfig(min_train_bins=64, recalibrate_every_bins=32)
        baseline = stream_detect(chunks, config)
        report = parallel_stream_detect(chunks, config, n_workers=6,
                                        mode="shard")
        full = report_parity(baseline, report)
        assert all(full["equal"].values()), full["equal"]

    def test_lowrank_engine_is_rejected(self, live_config):
        config = StreamingConfig(engine="lowrank")
        with pytest.raises(ValueError, match="exact scatter"):
            parallel_stream_detect(iter(()), config, mode="shard")

    def test_distributed_checkpoint_restores_as_flat_detector(
            self, small_dataset, live_config, baseline_report, tmp_path):
        # Checkpoint the distributed run mid-stream; the checkpoint is the
        # *merged* state, so an ordinary single-process detector resumes
        # from it and finishes the stream with the identical event list.
        chunks = list(chunk_series(small_dataset.series, CHUNK))
        every = 5
        parallel_stream_detect(iter(chunks), live_config, n_workers=2,
                               mode="shard", checkpoint_dir=tmp_path,
                               checkpoint_every_chunks=every)
        restored = StreamingNetworkDetector.restore(tmp_path)
        resume_from = (len(chunks) // every) * every
        assert restored.report.n_chunks_processed == resume_from
        for chunk in chunks[resume_from:]:
            restored.process_chunk(chunk)
        report = restored.finish()
        parity = event_parity(baseline_report.events, report.events)
        assert parity.exact, parity.to_dict()
        full = report_parity(baseline_report, report)
        assert all(full["equal"].values()), full["equal"]

    def test_checkpoint_requires_shard_mode(self, live_config, tmp_path):
        with pytest.raises(ValueError, match="mode='shard'"):
            parallel_stream_detect(iter(()), live_config, mode="type",
                                   checkpoint_dir=tmp_path,
                                   checkpoint_every_chunks=2)
        with pytest.raises(ValueError, match="go together"):
            parallel_stream_detect(iter(()), live_config, mode="shard",
                                   checkpoint_dir=tmp_path)


def _tiny_chunks(n_chunks=12, n_bins=16, n_flows=9, start=0):
    rng = np.random.default_rng(42)
    return [TrafficChunk(start_bin=start + n_bins * i, matrices={
        TrafficType.BYTES: rng.random((n_bins, n_flows)) + 1.0})
        for i in range(n_chunks)]


def _crashing_worker(*args):
    os._exit(3)


class _ExplodingDetector:
    def __init__(self, *args, **kwargs):
        raise RuntimeError("instrumented crash before any chunk")


_REAL_TYPE_WORKER = parallel._type_worker


def _crashing_on_first(*args):
    """The real type worker, with detector construction exploding."""
    parallel.StreamingSubspaceDetector = _ExplodingDetector
    _REAL_TYPE_WORKER(*args)


class TestWorkerFailurePaths:
    """Satellite: crash propagation, backpressure, and source failures."""

    fast = StreamingConfig(min_train_bins=64, poll_seconds=0.05)

    @pytest.mark.parametrize("mode,target",
                             [("type", "_type_worker"),
                              ("shard", "_shard_worker")])
    def test_worker_crash_propagates_promptly(self, monkeypatch, mode,
                                              target):
        monkeypatch.setattr(parallel, target, _crashing_worker)
        started = time.monotonic()
        with pytest.raises(RuntimeError,
                           match="exit code 3|exited before the end"):
            parallel_stream_detect(_tiny_chunks(), self.fast, n_workers=2,
                                   mode=mode)
        # Sentinel wakeup, not the old 1 s poll: the death is noticed fast.
        assert time.monotonic() - started < 10.0
        assert multiprocessing.active_children() == []

    def test_bounded_queues_throttle_a_slow_worker(self, monkeypatch):
        gate = multiprocessing.Event()
        real_worker = parallel._type_worker

        def gated_worker(*args):
            gate.wait()
            real_worker(*args)

        monkeypatch.setattr(parallel, "_type_worker", gated_worker)
        config = dataclasses.replace(self.fast, bus_slots=2)
        pulled = []

        def counting_chunks():
            for chunk in _tiny_chunks():
                pulled.append(chunk.start_bin)
                yield chunk

        result = {}
        thread = threading.Thread(
            target=lambda: result.update(report=parallel_stream_detect(
                counting_chunks(), config, queue_depth=1)),
            daemon=True)
        thread.start()
        time.sleep(1.0)
        # With the worker gated shut, the driver must be blocked by the
        # ring/queue bound — not buffering the whole stream ahead.
        assert thread.is_alive()
        assert len(pulled) < 12
        gate.set()
        thread.join(timeout=120)
        assert not thread.is_alive()
        assert result["report"].n_chunks_processed == 12

    @pytest.mark.parametrize("mode", ["type", "shard"])
    def test_source_failure_shuts_workers_down(self, mode):
        def failing_source():
            for chunk in _tiny_chunks(n_chunks=3):
                yield chunk
            raise ValueError("source exploded")

        with pytest.raises(ValueError, match="source exploded"):
            parallel_stream_detect(failing_source(), self.fast, n_workers=2,
                                   mode=mode)
        assert multiprocessing.active_children() == []


class TestParallelEdgeCases:
    def test_empty_stream(self, live_config):
        report = parallel_stream_detect(iter(()), live_config)
        assert isinstance(report, StreamingReport)
        assert report.n_chunks_processed == 0
        assert report.events == []

    def test_validation(self, live_config):
        with pytest.raises(ValueError):
            parallel_stream_detect(iter(()), live_config, queue_depth=0)
        with pytest.raises(ValueError):
            parallel_stream_detect(iter(()), live_config, n_workers=0)
        with pytest.raises(ValueError):
            parallel_stream_detect(iter(()), StreamingConfig(identify=False))

    def test_worker_failure_propagates(self, live_config):
        rng = np.random.default_rng(0)
        good = TrafficChunk(start_bin=0, matrices={
            TrafficType.BYTES: rng.random((16, 9)) + 1.0})
        bad = TrafficChunk(start_bin=16, matrices={
            TrafficType.BYTES: rng.random((16, 5)) + 1.0})  # wrong p
        with pytest.raises(RuntimeError,
                           match="streaming worker failed") as excinfo:
            parallel_stream_detect([good, bad], live_config)
        # The forwarded traceback identifies the failing worker and how far
        # it got, so a crash in a long run is attributable from the message.
        text = str(excinfo.value)
        assert "worker type-0" in text
        assert "types bytes" in text
        assert "last-processed chunk 0" in text

    def test_worker_failure_before_any_chunk(self, live_config, monkeypatch):
        monkeypatch.setattr(parallel, "_type_worker", _crashing_on_first)
        rng = np.random.default_rng(0)
        chunk = TrafficChunk(start_bin=0, matrices={
            TrafficType.BYTES: rng.random((16, 9)) + 1.0})
        with pytest.raises(RuntimeError,
                           match="streaming worker failed") as excinfo:
            parallel_stream_detect([chunk], live_config)
        assert "last-processed chunk none" in str(excinfo.value)


class TestWorkerSupervisor:
    def test_policy_validation(self, live_config):
        from repro.streaming import WorkerSupervisor
        factory = lambda resume_bin: iter(())  # noqa: E731
        with pytest.raises(ValueError):
            WorkerSupervisor(live_config, factory, max_restarts=-1)
        with pytest.raises(ValueError):
            WorkerSupervisor(live_config, factory, backoff_factor=0.5)
        with pytest.raises(ValueError):
            WorkerSupervisor(live_config, factory, jitter=-0.1)

    def test_backoff_schedule_is_seeded_and_exponential(self, live_config):
        from repro.streaming import WorkerSupervisor

        def schedule(seed):
            supervisor = WorkerSupervisor(
                live_config, [],
                backoff_base=0.1, backoff_factor=2.0, jitter=0.5, seed=seed)
            return [supervisor._backoff_seconds(k) for k in range(4)]

        first = schedule(42)
        assert first == schedule(42)
        assert first != schedule(43)
        for attempt, delay in enumerate(first):
            base = 0.1 * 2.0 ** attempt
            assert base <= delay <= base * 1.5
        assert first[0] < first[1] < first[2] < first[3]

    def test_zero_budget_reproduces_fail_fast(self, small_dataset,
                                              live_config, tmp_path):
        from repro.faults import FaultPlan
        from repro.streaming import WorkerSupervisor
        config = dataclasses.replace(live_config, parallel_mode="shard")
        from repro.streaming import ChunkedSeriesSource
        source = ChunkedSeriesSource(small_dataset.series, CHUNK)

        plan = FaultPlan().kill_worker(at_chunk=3, worker=0)
        supervisor = WorkerSupervisor(
            config, source, n_workers=2, checkpoint_dir=tmp_path / "ckpt",
            checkpoint_every_chunks=2, max_restarts=0,
            sleep=lambda seconds: None, fault_hook=plan.hook)
        with pytest.raises(RuntimeError):
            supervisor.run()
        assert supervisor.restarts == 0
        assert supervisor.degraded is False

    def test_type_mode_restart_replays_from_start(self, small_dataset,
                                                  live_config,
                                                  baseline_report):
        from repro.faults import FaultPlan
        from repro.streaming import WorkerSupervisor
        series = small_dataset.series

        def factory(resume_bin):
            assert resume_bin == 0  # no type-mode checkpoints: full replay
            return chunk_series(series, CHUNK)

        plan = FaultPlan().kill_worker(at_chunk=3, worker=0)
        # A legacy factory passed positionally still works, via the
        # deprecation shim in as_chunk_source.
        with pytest.deprecated_call():
            supervisor = WorkerSupervisor(
                live_config, factory, n_workers=2, mode="type",
                max_restarts=1, backoff_base=0.0,
                sleep=lambda seconds: None, fault_hook=plan.hook)
        report = supervisor.run()
        assert supervisor.restarts == 1
        parity = event_parity(baseline_report.events, report.events)
        assert parity.exact, parity.to_dict()


class TestShardWorkerSeeding:
    def test_from_seed_reconstructs_the_shard_block(self):
        from repro.streaming import ShardWorkerMoments, partition_columns
        from repro.streaming.online_pca import OnlinePCA
        rng = np.random.default_rng(5)
        data = rng.gamma(4.0, 25.0, size=(64, 10))
        flat = OnlinePCA()
        flat.partial_fit(data)
        state = flat.state_dict()
        scatter = state["arrays"]["scatter"]
        mean = state["arrays"]["mean"]
        n_shards = 3
        for shard_index, columns in enumerate(
                partition_columns(mean.size, n_shards)):
            block = scatter[columns, :]
            engine = ShardWorkerMoments.from_seed(
                shard_index, n_shards, 1.0, state["meta"], mean, block)
            np.testing.assert_array_equal(engine._shard.block, block)
            np.testing.assert_array_equal(engine._mean, mean)
            assert engine._weight_sum == flat._weight_sum
            assert engine._n_bins_seen == flat._n_bins_seen
            # Continuing the stream from the seed matches a worker that
            # saw the whole stream from the start.
            more = rng.gamma(4.0, 25.0, size=(32, 10))
            engine.partial_fit(more)
            scratch = ShardWorkerMoments(shard_index, n_shards)
            scratch.partial_fit(data)
            scratch.partial_fit(more)
            np.testing.assert_allclose(engine._shard.block,
                                       scratch._shard.block, rtol=1e-12)

    def test_from_seed_rejects_wrong_block_shape(self):
        from repro.streaming import ShardWorkerMoments
        from repro.streaming.online_pca import OnlinePCA
        flat = OnlinePCA()
        flat.partial_fit(np.random.default_rng(0).gamma(4.0, 25.0, size=(16, 10)))
        state = flat.state_dict()
        with pytest.raises(ValueError):
            ShardWorkerMoments.from_seed(
                0, 2, 1.0, state["meta"], state["arrays"]["mean"],
                state["arrays"]["scatter"])  # full scatter, not the block
