"""Seeded randomized property tests of the streaming moment algebra.

Three algebraic guarantees the sharded/parallel subsystem rests on:

1. **Chunking invariance** — with ``λ = 1``, any split of a stream into
   chunks yields the same mean/covariance as ``np.cov`` of the full
   history, regardless of chunk boundaries.
2. **Shard-merge associativity/commutativity** — for any K-way partition
   of the columns (contiguous, shuffled, unbalanced), the assembled
   :class:`ShardedOnlinePCA` covariance equals the single-engine one, and
   the shard order inside the partition is irrelevant (bitwise).
3. **Temporal Chan merge** — engines over disjoint consecutive segments
   combine exactly: associative for every ``λ``, commutative at ``λ = 1``.
"""

import numpy as np
import pytest

from repro.streaming import (
    OnlinePCA,
    ShardedOnlinePCA,
    merge_online_pca,
    partition_columns,
)

#: Number of randomized draws per property (seeded, so deterministic).
N_TRIALS = 10


def _random_stream(rng, n_bins=None, n_features=None):
    """A correlated random stream with nontrivial spectrum and offset."""
    n = int(n_bins if n_bins is not None else rng.integers(30, 200))
    p = int(n_features if n_features is not None else rng.integers(3, 24))
    k = int(rng.integers(1, p + 1))
    latent = rng.normal(size=(n, k))
    mixing = rng.normal(size=(k, p))
    return latent @ mixing + rng.normal(scale=20.0, size=p) + 50.0


def _random_splits(rng, n_bins):
    """Random chunk boundaries 0 < s1 < ... < n_bins (possibly none)."""
    n_cuts = int(rng.integers(0, min(8, n_bins)))
    cuts = sorted(rng.choice(np.arange(1, n_bins), size=n_cuts, replace=False))
    return [0] + [int(c) for c in cuts] + [n_bins]


def _feed(engine, matrix, bounds):
    for start, stop in zip(bounds[:-1], bounds[1:]):
        engine.partial_fit(matrix[start:stop])
    return engine


class TestChunkingInvariance:
    def test_any_split_matches_full_history_cov(self):
        rng = np.random.default_rng(20040101)
        for _ in range(N_TRIALS):
            matrix = _random_stream(rng)
            bounds = _random_splits(rng, matrix.shape[0])
            engine = _feed(OnlinePCA(), matrix, bounds)
            np.testing.assert_allclose(engine.mean, matrix.mean(axis=0),
                                       rtol=1e-9, atol=1e-9)
            np.testing.assert_allclose(engine.covariance(),
                                       np.cov(matrix, rowvar=False),
                                       rtol=1e-8, atol=1e-8)

    def test_two_different_splits_agree_with_each_other(self):
        rng = np.random.default_rng(19970423)
        for _ in range(N_TRIALS):
            matrix = _random_stream(rng)
            first = _feed(OnlinePCA(), matrix,
                          _random_splits(rng, matrix.shape[0]))
            second = _feed(OnlinePCA(), matrix,
                           _random_splits(rng, matrix.shape[0]))
            np.testing.assert_allclose(first.covariance(), second.covariance(),
                                       rtol=1e-9, atol=1e-9)
            assert first.n_bins_seen == second.n_bins_seen
            assert first.weight_sum == pytest.approx(second.weight_sum)

    def test_chunking_invariance_extends_to_eigenbasis(self):
        rng = np.random.default_rng(11)
        matrix = _random_stream(rng, n_bins=150, n_features=12)
        whole = OnlinePCA().partial_fit(matrix)
        chunked = _feed(OnlinePCA(), matrix, _random_splits(rng, 150))
        np.testing.assert_allclose(whole.eigenbasis()[0],
                                   chunked.eigenbasis()[0],
                                   rtol=1e-8, atol=1e-8)


class TestShardMergeAlgebra:
    def test_random_partitions_match_single_engine(self):
        rng = np.random.default_rng(42)
        for _ in range(N_TRIALS):
            matrix = _random_stream(rng)
            p = matrix.shape[1]
            n_shards = int(rng.integers(1, p + 1))
            # Random (shuffled, unbalanced) K-way partition of the columns.
            permuted = rng.permutation(p)
            partition = [cols for cols in
                         np.array_split(permuted, n_shards) if cols.size]
            bounds = _random_splits(rng, matrix.shape[0])
            single = _feed(OnlinePCA(), matrix, bounds)
            sharded = _feed(ShardedOnlinePCA(partition=partition), matrix,
                            bounds)
            np.testing.assert_allclose(sharded.covariance(),
                                       single.covariance(),
                                       rtol=1e-9, atol=1e-9)
            np.testing.assert_array_equal(sharded.mean, single.mean)
            assert sharded.weight_sum == pytest.approx(single.weight_sum)
            assert sharded.n_samples == single.n_samples

    def test_shard_order_is_irrelevant_bitwise(self):
        # Commutativity in the partition: permuting the shard list yields
        # the identical assembled scatter, entry for entry.
        rng = np.random.default_rng(7)
        matrix = _random_stream(rng, n_bins=120, n_features=15)
        partition = [np.array(c) for c in ([3, 0, 7], [1, 2, 14],
                                           [4, 5, 6, 8], [9, 10, 11, 12, 13])]
        forward = ShardedOnlinePCA(partition=partition)
        backward = ShardedOnlinePCA(partition=list(reversed(partition)))
        for start in range(0, 120, 40):
            forward.partial_fit(matrix[start:start + 40])
            backward.partial_fit(matrix[start:start + 40])
        np.testing.assert_array_equal(forward.merged_scatter(),
                                      backward.merged_scatter())

    def test_refining_a_partition_is_associative(self):
        # K=2 and the K=4 refinement of the same stream agree: merging
        # (A ∪ B) and (C ∪ D) equals merging A, B, C, D.
        rng = np.random.default_rng(13)
        matrix = _random_stream(rng, n_bins=140, n_features=16)
        coarse = ShardedOnlinePCA(partition=[range(0, 8), range(8, 16)])
        fine = ShardedOnlinePCA(partition=[range(0, 4), range(4, 8),
                                           range(8, 12), range(12, 16)])
        for start in range(0, 140, 35):
            coarse.partial_fit(matrix[start:start + 35])
            fine.partial_fit(matrix[start:start + 35])
        np.testing.assert_allclose(fine.covariance(), coarse.covariance(),
                                   rtol=1e-12, atol=1e-12)

    def test_sharding_with_forgetting_matches_single_engine(self):
        rng = np.random.default_rng(99)
        for lam in (0.9, 0.99):
            matrix = _random_stream(rng, n_bins=160, n_features=10)
            single = OnlinePCA(forgetting=lam)
            sharded = ShardedOnlinePCA(n_shards=3, forgetting=lam)
            for start in range(0, 160, 23):
                single.partial_fit(matrix[start:start + 23])
                sharded.partial_fit(matrix[start:start + 23])
            np.testing.assert_allclose(sharded.covariance(),
                                       single.covariance(),
                                       rtol=1e-10, atol=1e-10)
            assert sharded.effective_samples == \
                pytest.approx(single.effective_samples)

    def test_partition_helper_and_validation(self):
        partition = partition_columns(10, 4)
        assert [len(c) for c in partition] == [3, 3, 2, 2]
        assert partition_columns(3, 8) and len(partition_columns(3, 8)) == 3
        with pytest.raises(ValueError):
            ShardedOnlinePCA(partition=[[0, 1], [1, 2]]).partial_fit(
                np.ones((2, 3)))
        with pytest.raises(ValueError):
            ShardedOnlinePCA(partition=[[0], [2]]).partial_fit(np.ones((2, 3)))
        with pytest.raises(ValueError):
            ShardedOnlinePCA(n_shards=0)


class TestTemporalChanMerge:
    def test_merge_equals_single_engine_over_segments(self):
        rng = np.random.default_rng(314)
        for _ in range(N_TRIALS):
            matrix = _random_stream(rng)
            bounds = _random_splits(rng, matrix.shape[0])
            single = _feed(OnlinePCA(), matrix, bounds)
            merged = OnlinePCA()
            for start, stop in zip(bounds[:-1], bounds[1:]):
                merged = merge_online_pca(
                    merged, OnlinePCA().partial_fit(matrix[start:stop]))
            np.testing.assert_allclose(merged.covariance(),
                                       single.covariance(),
                                       rtol=1e-9, atol=1e-9)
            assert merged.n_bins_seen == single.n_bins_seen

    def test_merge_is_associative_for_any_forgetting(self):
        rng = np.random.default_rng(2718)
        for lam in (1.0, 0.97):
            matrix = _random_stream(rng, n_bins=180, n_features=8)
            a = OnlinePCA(forgetting=lam).partial_fit(matrix[:60])
            b = OnlinePCA(forgetting=lam).partial_fit(matrix[60:120])
            c = OnlinePCA(forgetting=lam).partial_fit(matrix[120:])
            left = merge_online_pca(merge_online_pca(a, b), c)
            right = merge_online_pca(a, merge_online_pca(b, c))
            np.testing.assert_allclose(left.covariance(), right.covariance(),
                                       rtol=1e-10, atol=1e-10)
            assert left.weight_sum == pytest.approx(right.weight_sum)
            assert left.effective_samples == \
                pytest.approx(right.effective_samples)

    def test_merge_is_commutative_without_forgetting(self):
        rng = np.random.default_rng(161803)
        matrix = _random_stream(rng, n_bins=100, n_features=9)
        a = OnlinePCA().partial_fit(matrix[:37])
        b = OnlinePCA().partial_fit(matrix[37:])
        ab = merge_online_pca(a, b)
        ba = merge_online_pca(b, a)
        np.testing.assert_allclose(ab.covariance(), ba.covariance(),
                                   rtol=1e-10, atol=1e-10)
        np.testing.assert_allclose(ab.mean, ba.mean, rtol=1e-12, atol=1e-12)

    def test_merge_with_empty_engine_is_identity(self):
        rng = np.random.default_rng(5)
        matrix = _random_stream(rng, n_bins=50, n_features=6)
        engine = OnlinePCA().partial_fit(matrix)
        for merged in (merge_online_pca(OnlinePCA(), engine),
                       merge_online_pca(engine, OnlinePCA())):
            np.testing.assert_array_equal(merged.covariance(),
                                          engine.covariance())
            assert merged.n_bins_seen == engine.n_bins_seen

    def test_merge_rejects_mismatched_engines(self):
        with pytest.raises(ValueError):
            merge_online_pca(OnlinePCA(forgetting=1.0),
                             OnlinePCA(forgetting=0.9))
        a = OnlinePCA().partial_fit(np.ones((3, 4)))
        b = OnlinePCA().partial_fit(np.ones((3, 5)))
        with pytest.raises(ValueError):
            merge_online_pca(a, b)
