"""Merge-parity tests for the column-sharded moment engine.

The repo's core guarantee — exact parity with the single-process reference
— extended to sharded runs: a :class:`ShardedOnlinePCA` behind the
streaming detector must reproduce the single-engine ``stream_detect``
event list exactly, for any shard count, and its serialized state must
survive a checkpoint round trip bit-for-bit.
"""

import numpy as np
import pytest

from repro.evaluation import event_parity, report_parity
from repro.flows.timeseries import TrafficType
from repro.streaming import (
    OnlinePCA,
    ShardedOnlinePCA,
    StreamingConfig,
    StreamingSubspaceDetector,
    chunk_series,
    make_engine,
    replay_network_anomalies,
    stream_detect,
)


@pytest.fixture(scope="module")
def live_config():
    return StreamingConfig(min_train_bins=128, recalibrate_every_bins=32)


@pytest.fixture(scope="module")
def baseline_report(small_dataset, live_config):
    """Single-process, single-engine live run — the parity reference."""
    return stream_detect(chunk_series(small_dataset.series, 48), live_config)


class TestShardedEngineApi:
    def test_make_engine_selects_by_config(self):
        assert isinstance(make_engine(StreamingConfig()), OnlinePCA)
        engine = make_engine(StreamingConfig(n_shards=4, forgetting=0.99))
        assert isinstance(engine, ShardedOnlinePCA)
        assert engine.n_shards == 4
        assert engine.forgetting == 0.99

    def test_accessors_mirror_online_pca(self, rng):
        matrix = rng.normal(size=(60, 9)) + 10.0
        single = OnlinePCA().partial_fit(matrix)
        sharded = ShardedOnlinePCA(n_shards=3).partial_fit(matrix)
        assert sharded.n_features == single.n_features == 9
        assert sharded.n_bins_seen == single.n_bins_seen == 60
        assert sharded.rank == single.rank
        assert sharded.n_samples == single.n_samples
        assert len(sharded.shard_columns) == 3
        np.testing.assert_array_equal(np.sort(np.concatenate(
            sharded.shard_columns)), np.arange(9))
        with pytest.raises(ValueError):
            sharded.mean[0] = 1.0  # read-only view, like OnlinePCA.mean

    def test_eigenbasis_matches_and_is_cached(self, rng):
        matrix = rng.normal(size=(80, 7)) @ rng.normal(size=(7, 7)) + 5.0
        single = OnlinePCA().partial_fit(matrix)
        sharded = ShardedOnlinePCA(n_shards=2).partial_fit(matrix)
        np.testing.assert_allclose(sharded.eigenbasis()[0],
                                   single.eigenbasis()[0],
                                   rtol=1e-9, atol=1e-9)
        first = sharded.eigenbasis()[0]
        assert sharded.eigenbasis()[0] is first
        sharded.partial_fit(matrix[:5])
        assert sharded.eigenbasis()[0] is not first

    def test_merged_returns_equivalent_single_engine(self, rng):
        matrix = rng.normal(size=(50, 8)) + 3.0
        sharded = ShardedOnlinePCA(n_shards=4).partial_fit(matrix)
        merged = sharded.merged()
        assert isinstance(merged, OnlinePCA)
        np.testing.assert_array_equal(merged.covariance(),
                                      sharded.covariance())
        np.testing.assert_array_equal(merged.mean, sharded.mean)
        assert merged.n_bins_seen == sharded.n_bins_seen
        assert merged.weight_sum == sharded.weight_sum

    def test_errors_before_data(self):
        engine = ShardedOnlinePCA(n_shards=2)
        assert engine.n_features is None
        assert engine.rank == 0
        assert engine.shard_columns == []
        with pytest.raises(ValueError):
            engine.covariance()
        with pytest.raises(ValueError):
            engine.merged()
        with pytest.raises(ValueError):
            _ = engine.mean

    def test_state_roundtrip_is_bitwise(self, rng):
        matrix = rng.normal(size=(70, 11)) + 8.0
        sharded = ShardedOnlinePCA(n_shards=3, forgetting=0.995)
        for start in range(0, 70, 20):
            sharded.partial_fit(matrix[start:start + 20])
        state = sharded.state_dict()
        restored = ShardedOnlinePCA.from_state(state["meta"], state["arrays"])
        np.testing.assert_array_equal(restored.merged_scatter(),
                                      sharded.merged_scatter())
        np.testing.assert_array_equal(restored.mean, sharded.mean)
        assert restored.weight_sum == sharded.weight_sum
        assert restored.n_shards == sharded.n_shards
        # Continuing both engines keeps them on the identical trajectory.
        sharded.partial_fit(matrix[60:])
        restored.partial_fit(matrix[60:])
        np.testing.assert_array_equal(restored.merged_scatter(),
                                      sharded.merged_scatter())


class TestShardedRunParity:
    @pytest.mark.parametrize("n_shards", [2, 4, 7])
    def test_sharded_live_run_reproduces_event_list(
            self, small_dataset, live_config, baseline_report, n_shards):
        config = StreamingConfig(min_train_bins=live_config.min_train_bins,
                                 recalibrate_every_bins=32, n_shards=n_shards)
        sharded = stream_detect(chunk_series(small_dataset.series, 48), config)
        parity = event_parity(baseline_report.events, sharded.events)
        assert parity.exact, parity.to_dict()
        full = report_parity(baseline_report, sharded)
        assert all(full["equal"].values()), full["equal"]

    def test_sharded_two_pass_replay_matches_batch(self, small_dataset):
        from repro.core import detect_network_anomalies
        batch = detect_network_anomalies(small_dataset.series)
        replay = replay_network_anomalies(
            small_dataset.series, chunk_size=96,
            config=StreamingConfig(n_shards=4))
        assert replay.events == batch.events
        assert replay.detections == batch.detections

    def test_sharded_detector_snapshot_matches_single(self, small_dataset):
        matrix = small_dataset.series.matrix(TrafficType.BYTES)
        single = StreamingSubspaceDetector(StreamingConfig())
        sharded = StreamingSubspaceDetector(StreamingConfig(n_shards=4))
        single.process_chunk(matrix)
        sharded.process_chunk(matrix)
        np.testing.assert_allclose(sharded.snapshot.eigenvalues,
                                   single.snapshot.eigenvalues,
                                   rtol=1e-9, atol=1e-9)
        assert sharded.snapshot.limits.spe == \
            pytest.approx(single.snapshot.limits.spe, rel=1e-9)
        assert sharded.snapshot.limits.t2 == \
            pytest.approx(single.snapshot.limits.t2, rel=1e-12)
        assert sharded.snapshot.n_samples == single.snapshot.n_samples
