"""Unit + property tests of the telemetry plane (registry/tracer/health).

The registry's merge is the cross-process fold the distributed drivers
rely on, so it gets the same algebraic treatment as the moment algebra in
``test_streaming_properties.py``: seeded randomized registries, merged in
every order/grouping, must agree bit-for-bit for the order-independent
metric kinds (counters, histograms, ``sum``/``max``/``min`` gauges).
"""

import json

import numpy as np
import pytest

from repro.telemetry import (
    HealthSnapshot,
    ListSink,
    MetricsRegistry,
    Telemetry,
    Tracer,
    prometheus_exposition,
    render_status_table,
)

#: Number of randomized draws per property (seeded, so deterministic).
N_TRIALS = 10

_NAMES = ("bins_processed", "events", "stage_seconds", "worker_chunks",
          "lag")
_LABELS = (None, {"type": "bytes"}, {"type": "flows"},
           {"stage": "detect"}, {"worker": "shard-1"})


def _dyadic(rng, low, high):
    """A random multiple of 1/8 — sums of these are exact in float64, so
    the algebra properties can be asserted bitwise."""
    return float(rng.integers(low * 8, high * 8)) / 8.0


def _random_registry(rng, gauge_mode="sum"):
    """A registry with random counters/gauges/histograms over a name pool."""
    registry = MetricsRegistry()
    for _ in range(int(rng.integers(1, 12))):
        name = str(rng.choice(_NAMES))
        labels = _LABELS[int(rng.integers(len(_LABELS)))]
        kind = int(rng.integers(3))
        if kind == 0:
            registry.counter("c_" + name, labels).inc(_dyadic(rng, 0, 9))
        elif kind == 1:
            registry.gauge("g_" + name, labels, mode=gauge_mode).set(
                _dyadic(rng, -5, 5))
        else:
            histogram = registry.histogram("h_" + name, labels)
            for _ in range(int(rng.integers(1, 20))):
                histogram.observe(_dyadic(rng, 0, 10))
    return registry


def _copy(registry):
    return MetricsRegistry.from_dict(registry.to_dict())


class TestRegistryBasics:
    def test_counter_only_increases(self):
        registry = MetricsRegistry()
        counter = registry.counter("bins")
        counter.inc(3)
        counter.inc(0.5)
        assert registry.value("bins") == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_metric_identity_is_name_plus_labels(self):
        registry = MetricsRegistry()
        registry.counter("events", {"type": "B"}).inc()
        registry.counter("events", {"type": "F"}).inc(2)
        assert registry.value("events", {"type": "B"}) == 1
        assert registry.value("events", {"type": "F"}) == 2
        assert len(registry.labeled("events")) == 2

    def test_schema_conflicts_are_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        registry.gauge("g", mode="sum")
        with pytest.raises(ValueError):
            registry.gauge("g", mode="max")
        registry.histogram("h", bounds=(1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("h", bounds=(1.0, 3.0))

    def test_gauge_merge_modes(self):
        for mode, expected in (("sum", 7.0), ("max", 5.0), ("min", 2.0),
                               ("last", 5.0)):
            a = MetricsRegistry()
            b = MetricsRegistry()
            a.gauge("g", mode=mode).set(2.0)
            b.gauge("g", mode=mode).set(5.0)
            a.merge(b)
            assert a.value("g") == expected, mode

    def test_unset_gauge_contributes_nothing(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.gauge("g", mode="min").set(4.0)
        b.gauge("g", mode="min")  # registered but never set
        a.merge(b)
        assert a.value("g") == 4.0

    def test_histogram_buckets_and_quantile(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 1.7, 3.0, 100.0):
            histogram.observe(value)
        assert histogram.counts == [1, 2, 1, 1]  # last = +Inf bucket
        assert histogram.count == 5
        assert histogram.mean == pytest.approx(106.7 / 5)
        assert histogram.quantile(0.5) == 2.0
        assert histogram.quantile(1.0) == 4.0  # overflow reports last edge

    def test_serialization_round_trip(self):
        rng = np.random.default_rng(20040701)
        for _ in range(N_TRIALS):
            registry = _random_registry(rng)
            payload = json.loads(json.dumps(registry.to_dict()))
            assert MetricsRegistry.from_dict(payload).to_dict() \
                == registry.to_dict()


class TestMergeAlgebra:
    """merge() is associative, and commutative for order-free kinds."""

    @pytest.mark.parametrize("gauge_mode", ["sum", "max", "min"])
    def test_merge_is_commutative(self, gauge_mode):
        rng = np.random.default_rng(20040702)
        for _ in range(N_TRIALS):
            a = _random_registry(rng, gauge_mode)
            b = _random_registry(rng, gauge_mode)
            ab = _copy(a).merge(_copy(b)).to_dict()
            ba = _copy(b).merge(_copy(a)).to_dict()
            assert sorted(ab["metrics"], key=str) \
                == sorted(ba["metrics"], key=str)

    @pytest.mark.parametrize("gauge_mode", ["sum", "max", "min", "last"])
    def test_merge_is_associative(self, gauge_mode):
        rng = np.random.default_rng(20040703)
        for _ in range(N_TRIALS):
            a = _random_registry(rng, gauge_mode)
            b = _random_registry(rng, gauge_mode)
            c = _random_registry(rng, gauge_mode)
            left = _copy(a).merge(_copy(b)).merge(_copy(c)).to_dict()
            right = _copy(a).merge(_copy(b).merge(_copy(c))).to_dict()
            assert left == right

    def test_merge_matches_single_stream(self):
        """K worker registries folded == one registry fed everything."""
        rng = np.random.default_rng(20040704)
        for _ in range(N_TRIALS):
            observations = rng.integers(
                0, 80, size=int(rng.integers(5, 40))) / 8.0
            n_workers = int(rng.integers(2, 5))
            whole = MetricsRegistry()
            parts = [MetricsRegistry() for _ in range(n_workers)]
            for i, value in enumerate(observations):
                whole.counter("n").inc()
                whole.histogram("h").observe(value)
                parts[i % n_workers].counter("n").inc()
                parts[i % n_workers].histogram("h").observe(value)
            folded = parts[0]
            for part in parts[1:]:
                folded.merge(part)
            assert folded.to_dict() == whole.to_dict()


class TestTracer:
    def test_sampling_is_deterministic_under_the_seed(self):
        def sampled_set(seed, rate, n=200):
            tracer = Tracer(sample_rate=rate, seed=seed)
            picks = [tracer.begin_chunk(i) for i in range(n)]
            tracer.end_chunk()
            return picks

        assert sampled_set(7, 0.3) == sampled_set(7, 0.3)
        assert sampled_set(7, 0.3) != sampled_set(8, 0.3)
        # Rates 0 and 1 short-circuit but keep chunk accounting exact.
        assert not any(sampled_set(7, 0.0))
        assert all(sampled_set(7, 1.0))

    def test_rate_bounds_sample_volume(self):
        tracer = Tracer(sample_rate=0.2, seed=3)
        for i in range(1000):
            tracer.begin_chunk(i)
        assert 120 <= tracer.n_chunks_sampled <= 280

    def test_histogram_always_fed_sink_only_when_sampled(self):
        registry = MetricsRegistry()
        sink = ListSink()
        tracer = Tracer(sample_rate=0.0, seed=0, registry=registry, sink=sink)
        tracer.begin_chunk(0)
        with tracer.span("detect"):
            pass
        tracer.end_chunk()
        histogram = registry.get("stage_seconds", {"stage": "detect"})
        assert histogram.count == 1
        assert sink.records == []  # unsampled chunk: no structured record

        tracer = Tracer(sample_rate=1.0, seed=0, registry=registry, sink=sink)
        tracer.begin_chunk(4)
        with tracer.span("detect"):
            pass
        tracer.end_chunk()
        assert [r["stage"] for r in sink.records] == ["detect"]
        assert sink.records[0]["chunk"] == 4

    def test_off_chunk_spans_always_emitted(self):
        sink = ListSink()
        tracer = Tracer(sample_rate=0.0, seed=0, sink=sink)
        with tracer.span("checkpoint"):
            pass
        assert [r["stage"] for r in sink.records] == ["checkpoint"]
        assert "chunk" not in sink.records[0]


class TestHealthSnapshot:
    def _populated_registry(self):
        registry = MetricsRegistry()
        registry.counter("bins_processed").inc(576)
        registry.counter("chunks_processed").inc(12)
        registry.counter("warmup_bins").inc(96)
        registry.gauge("runtime_seconds").set(2.0)
        registry.counter("events", {"type": "B"}).inc(3)
        registry.counter("events", {"type": "BF"}).inc(1)
        registry.counter("recalibrations", {"type": "bytes"}).inc(5)
        registry.counter("recalibrations", {"type": "flows"}).inc(5)
        registry.counter("worker_chunks", {"worker": "shard-0"}).inc(12)
        registry.histogram("stage_seconds", {"stage": "detect"}).observe(0.01)
        return registry

    def test_headline_fields_from_registry(self):
        snapshot = HealthSnapshot.from_registry(self._populated_registry())
        assert snapshot.bins_processed == 576
        assert snapshot.chunks_processed == 12
        assert snapshot.warmup_bins == 96
        assert snapshot.bins_per_second == pytest.approx(288.0)
        assert snapshot.events_total == 4
        assert snapshot.events_by_type == {"B": 3, "BF": 1}
        assert snapshot.recalibrations == 10  # summed over the type labels
        assert snapshot.workers == {"shard-0": 12}
        assert snapshot.stage_seconds["detect"]["count"] == 1

    def test_write_read_round_trip(self, tmp_path):
        snapshot = HealthSnapshot.from_registry(self._populated_registry())
        path = tmp_path / "nested" / "health.json"
        snapshot.write(str(path))
        loaded = HealthSnapshot.read(str(path))
        assert loaded == snapshot
        assert loaded.registry().to_dict() \
            == self._populated_registry().to_dict()

    def test_status_table_renders_headlines(self):
        snapshot = HealthSnapshot.from_registry(self._populated_registry())
        table = render_status_table(snapshot)
        assert "bins processed     576" in table
        assert "recalibrations     10" in table
        assert "shard-0" in table


class TestPrometheusExposition:
    def test_counters_get_total_suffix_and_buckets_accumulate(self):
        registry = MetricsRegistry()
        registry.counter("bins_processed", help="Bins").inc(5)
        histogram = registry.histogram("stage_seconds", {"stage": "detect"},
                                       bounds=(1.0, 2.0))
        for value in (0.5, 1.5, 9.0):
            histogram.observe(value)
        text = prometheus_exposition(registry)
        assert "# HELP repro_bins_processed Bins" in text
        assert "repro_bins_processed_total 5.0" in text
        assert 'repro_stage_seconds_bucket{stage="detect",le="1.0"} 1' in text
        assert 'repro_stage_seconds_bucket{stage="detect",le="2.0"} 2' in text
        assert ('repro_stage_seconds_bucket{stage="detect",le="+Inf"} 3'
                in text)
        assert 'repro_stage_seconds_count{stage="detect"} 3' in text


class TestTelemetryFacade:
    class _Config:
        telemetry = True
        telemetry_sample_rate = 0.5
        telemetry_seed = 9
        telemetry_trace_path = ""
        telemetry_snapshot_path = ""
        telemetry_snapshot_every_chunks = 4

    def test_disabled_config_builds_nothing(self):
        class Disabled:
            telemetry = False

        assert Telemetry.from_config(Disabled()) is None

    def test_worker_gets_suffixed_trace_and_no_snapshot(self, tmp_path):
        config = self._Config()
        config.telemetry_trace_path = str(tmp_path / "trace.jsonl")
        config.telemetry_snapshot_path = str(tmp_path / "health.json")
        worker = Telemetry.from_config(config, worker="shard-2")
        assert worker.tracer.sink.path.endswith("trace.jsonl.shard-2")
        assert worker.snapshot_path == ""  # snapshots are coordinator-only

    def test_state_round_trip_keeps_counters_drops_spans(self):
        telemetry = Telemetry.from_config(self._Config())
        telemetry.registry.counter("bins_processed").inc(42)
        telemetry.begin_chunk(0)
        span = telemetry.span("detect")
        span.__enter__()
        assert telemetry.tracer.active_spans  # in flight right now
        state = json.loads(json.dumps(telemetry.state_dict()))

        restored = Telemetry.from_config(self._Config())
        restored.restore_state(state)
        assert restored.registry.value("bins_processed") == 42
        assert restored.tracer.active_spans == []  # spans did not survive
        span.__exit__(None, None, None)

    def test_snapshot_cadence(self, tmp_path):
        config = self._Config()
        config.telemetry_snapshot_path = str(tmp_path / "health.json")
        telemetry = Telemetry.from_config(config)
        telemetry.registry.counter("bins_processed").inc(7)
        telemetry.maybe_write_snapshot(3)
        assert not (tmp_path / "health.json").exists()
        telemetry.maybe_write_snapshot(4)
        assert HealthSnapshot.read(str(tmp_path
                                       / "health.json")).bins_processed == 7


class TestSnapshotWriteRaces:
    """Regression tests: the snapshot writer must tolerate concurrency."""

    def _snapshot(self):
        registry = MetricsRegistry()
        registry.counter("bins_processed").inc(7)
        registry.gauge("runtime_seconds").set(1.0)
        return HealthSnapshot.from_registry(registry)

    def test_concurrent_writers_never_tear_the_file(self, tmp_path):
        """Two processes snapshotting one path used to race on a single
        fixed temp name; unique temp names make every rename whole."""
        import threading

        path = tmp_path / "health.json"
        errors = []

        def writer():
            try:
                for _ in range(30):
                    self._snapshot().write(str(path))
            except Exception as error:  # noqa: BLE001 - surfaced below
                errors.append(error)

        def reader():
            try:
                for _ in range(60):
                    try:
                        HealthSnapshot.read(str(path))
                    except FileNotFoundError:
                        pass  # before the first write lands
            except Exception as error:  # noqa: BLE001 - surfaced below
                errors.append(error)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        threads.append(threading.Thread(target=reader))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert HealthSnapshot.read(str(path)).bins_processed == 7
        assert list(tmp_path.glob("*.tmp")) == []  # nothing left behind

    def test_failed_write_cleans_its_temp_file(self, tmp_path, monkeypatch):
        path = tmp_path / "health.json"
        snapshot = self._snapshot()
        monkeypatch.setattr(json, "dump",
                            lambda *a, **k: (_ for _ in ()).throw(
                                OSError("disk full")))
        with pytest.raises(OSError):
            snapshot.write(str(path))
        assert list(tmp_path.iterdir()) == []

    def test_forward_versioned_snapshot_loads_with_warning(self, tmp_path):
        """A snapshot written by a newer version may carry unknown fields;
        an old reader must warn and render what it knows — not crash."""
        path = tmp_path / "health.json"
        self._snapshot().write(str(path))
        data = json.loads(path.read_text())
        data["version"] = 99
        data["hyperdrive_engaged"] = True
        data["flux_capacitance"] = {"gigawatts": 1.21}
        path.write_text(json.dumps(data))
        with pytest.warns(RuntimeWarning, match="unknown fields"):
            loaded = HealthSnapshot.read(str(path))
        assert loaded.bins_processed == 7
        assert not hasattr(loaded, "hyperdrive_engaged")

    def test_known_fields_do_not_warn(self, tmp_path):
        import warnings

        path = tmp_path / "health.json"
        self._snapshot().write(str(path))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            HealthSnapshot.read(str(path))
