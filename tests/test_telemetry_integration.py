"""End-to-end telemetry: instrumented runs, checkpoints, merged snapshots.

The acceptance contract of the telemetry plane:

* enabling it never changes an event (bit-identical reports on/off);
* the written :class:`HealthSnapshot` reconciles **exactly** with the
  :class:`StreamingReport` of the same run — bins, events by type,
  recalibrations — including across worker processes in the parallel
  drivers (registries merged over the result pipes);
* counters survive checkpoint → restore, in-flight spans do not;
* ``tools/status.py`` renders a snapshot file without the package
  installed (PYTHONPATH=src is enough).
"""

import dataclasses
import json
import os
import subprocess
import sys

import pytest

from repro.core.events import count_by_label
from repro.streaming import (
    StreamingConfig,
    StreamingNetworkDetector,
    chunk_series,
    parallel_stream_detect,
    stream_detect,
)
from repro.telemetry import HealthSnapshot

CHUNK = 48


@pytest.fixture(scope="module")
def base_config():
    return StreamingConfig(min_train_bins=128, recalibrate_every_bins=96)


@pytest.fixture(scope="module")
def plain_report(small_dataset, base_config):
    return stream_detect(chunk_series(small_dataset.series, CHUNK),
                         base_config)


def _telemetry_config(base, tmp_path, **overrides):
    return dataclasses.replace(
        base, telemetry=True, telemetry_sample_rate=1.0,
        telemetry_trace_path=str(tmp_path / "trace.jsonl"),
        telemetry_snapshot_path=str(tmp_path / "health.json"),
        telemetry_snapshot_every_chunks=4, **overrides)


def _assert_reconciles(snapshot, report):
    """Snapshot and report describe the same run, exactly."""
    assert snapshot.bins_processed == report.n_bins_processed
    assert snapshot.chunks_processed == report.n_chunks_processed
    assert snapshot.warmup_bins == report.n_warmup_bins
    assert snapshot.events_total == report.n_events
    assert snapshot.events_by_type == count_by_label(report.events)


class TestFlatPipeline:
    def test_events_identical_with_telemetry_on(self, small_dataset,
                                                base_config, plain_report,
                                                tmp_path):
        config = _telemetry_config(base_config, tmp_path)
        report = stream_detect(chunk_series(small_dataset.series, CHUNK),
                               config)
        assert report.events == plain_report.events
        assert report.detections == plain_report.detections

    def test_snapshot_reconciles_with_report(self, small_dataset,
                                             base_config, tmp_path):
        config = _telemetry_config(base_config, tmp_path)
        report = stream_detect(chunk_series(small_dataset.series, CHUNK),
                               config)
        snapshot = HealthSnapshot.read(config.telemetry_snapshot_path)
        _assert_reconciles(snapshot, report)
        assert snapshot.recalibrations > 0
        assert snapshot.runtime_seconds == pytest.approx(
            report.runtime_seconds, rel=0.2)
        # Every chunk stage shows up in the latency summary.
        for stage in ("ingest", "center", "update", "detect", "aggregate",
                      "recalibrate"):
            assert snapshot.stage_seconds[stage]["count"] > 0, stage

    def test_trace_records_are_json_lines(self, small_dataset, base_config,
                                          tmp_path):
        config = _telemetry_config(base_config, tmp_path)
        stream_detect(chunk_series(small_dataset.series, CHUNK), config)
        with open(config.telemetry_trace_path, encoding="utf-8") as handle:
            records = [json.loads(line) for line in handle]
        assert records
        stages = {record["stage"] for record in records}
        assert {"ingest", "detect", "aggregate"} <= stages
        assert all("duration_seconds" in record for record in records)

    def test_runtime_fields_populated_even_when_disabled(self, small_dataset,
                                                         base_config):
        report = stream_detect(chunk_series(small_dataset.series, CHUNK),
                               base_config)
        assert report.runtime_seconds > 0.0
        assert report.bins_per_second > 0.0
        round_tripped = type(report).from_dict(report.to_dict())
        assert round_tripped.runtime_seconds == report.runtime_seconds
        assert round_tripped.bins_per_second == report.bins_per_second


class TestCheckpointRestore:
    def test_counters_survive_spans_dropped(self, small_dataset, base_config,
                                            tmp_path):
        config = _telemetry_config(base_config, tmp_path)
        chunks = list(chunk_series(small_dataset.series, CHUNK))
        split = 5
        detector = StreamingNetworkDetector(config)
        for chunk in chunks[:split]:
            detector.process_chunk(chunk)
        detector.save(tmp_path / "ckpt")
        assert detector.telemetry.registry.value("checkpoints") == 1

        restored = StreamingNetworkDetector.restore(tmp_path / "ckpt")
        registry = restored.telemetry.registry
        # Counters picked up exactly where the checkpoint left them...
        assert registry.value("bins_processed") == split * CHUNK
        assert registry.value("chunks_processed") == split
        assert registry.value("checkpoints") == 1
        # ...while the tracer is fresh: no in-flight span survives.
        assert restored.telemetry.tracer.active_spans == []
        assert restored.telemetry.tracer.n_chunks_seen == 0

        for chunk in chunks[split:]:
            restored.process_chunk(chunk)
        report = restored.finish()
        snapshot = HealthSnapshot.read(config.telemetry_snapshot_path)
        # The final snapshot covers the whole stream, not just the resumed
        # half — the restart-parity discipline extended to the counters.
        _assert_reconciles(snapshot, report)
        assert report.runtime_seconds > 0.0


class TestParallelDrivers:
    @pytest.mark.parametrize("mode,n_workers", [("type", 2), ("shard", 3)])
    def test_merged_snapshot_reconciles(self, small_dataset, base_config,
                                        plain_report, tmp_path, mode,
                                        n_workers):
        config = _telemetry_config(base_config, tmp_path)
        report = parallel_stream_detect(
            chunk_series(small_dataset.series, CHUNK), config,
            n_workers=n_workers, mode=mode)
        assert report.events == plain_report.events
        snapshot = HealthSnapshot.read(config.telemetry_snapshot_path)
        _assert_reconciles(snapshot, report)
        assert snapshot.recalibrations > 0
        # Every worker shipped its registry: per-worker chunk counts merged.
        prefix = "type-" if mode == "type" else "shard-"
        assert sorted(snapshot.workers) == [f"{prefix}{i}"
                                            for i in range(n_workers)]
        assert all(count == report.n_chunks_processed
                   for count in snapshot.workers.values())
        # Worker-side stage timings arrived too ("update" runs remotely in
        # shard mode, everything per-type in type mode).
        assert snapshot.stage_seconds["update"]["count"] > 0
        assert report.runtime_seconds > 0.0
        assert report.bins_per_second > 0.0

    def test_worker_trace_files_are_suffixed(self, small_dataset,
                                             base_config, tmp_path):
        config = _telemetry_config(base_config, tmp_path)
        parallel_stream_detect(chunk_series(small_dataset.series, CHUNK),
                               config, n_workers=2, mode="type")
        names = sorted(os.listdir(tmp_path))
        assert "trace.jsonl.type-0" in names
        assert "trace.jsonl.type-1" in names


class TestStatusCli:
    def _run(self, *args):
        env = dict(os.environ)
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env["PYTHONPATH"] = os.path.join(root, "src")
        return subprocess.run(
            [sys.executable, os.path.join(root, "tools", "status.py"),
             *args],
            capture_output=True, text=True, env=env)

    def test_renders_snapshot_file(self, small_dataset, base_config,
                                   tmp_path):
        config = _telemetry_config(base_config, tmp_path)
        report = stream_detect(chunk_series(small_dataset.series, CHUNK),
                               config)
        result = self._run(config.telemetry_snapshot_path)
        assert result.returncode == 0, result.stderr
        assert f"bins processed     {report.n_bins_processed}" \
            in result.stdout
        assert "recalibrations" in result.stdout

    def test_prometheus_flag(self, small_dataset, base_config, tmp_path):
        config = _telemetry_config(base_config, tmp_path)
        stream_detect(chunk_series(small_dataset.series, CHUNK), config)
        result = self._run(config.telemetry_snapshot_path, "--prometheus")
        assert result.returncode == 0, result.stderr
        assert "repro_bins_processed_total" in result.stdout
        assert "# TYPE repro_stage_seconds histogram" in result.stdout

    def test_missing_file_is_an_error(self, tmp_path):
        result = self._run(str(tmp_path / "absent.json"))
        assert result.returncode != 0
