"""Regression tests for the ``tools/status.py`` CLI.

The --watch loop must survive a torn concurrent read of the snapshot file
(the writer replaces it atomically, so a JSONDecodeError is transient) —
it reports and retries instead of crashing.
"""

import importlib.util
from pathlib import Path

from repro.telemetry import HealthSnapshot, MetricsRegistry

TOOLS = Path(__file__).resolve().parent.parent / "tools"

spec = importlib.util.spec_from_file_location("status", TOOLS / "status.py")
status = importlib.util.module_from_spec(spec)
spec.loader.exec_module(status)


def _write_snapshot(path):
    registry = MetricsRegistry()
    registry.counter("bins_processed").inc(12)
    registry.gauge("runtime_seconds").set(2.0)
    HealthSnapshot.from_registry(registry).write(str(path))


class TestRender:
    def test_valid_snapshot_renders_table(self, tmp_path, capsys):
        path = tmp_path / "health.json"
        _write_snapshot(path)
        assert status.main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "bins processed" in out
        assert "12" in out

    def test_prometheus_mode(self, tmp_path, capsys):
        path = tmp_path / "health.json"
        _write_snapshot(path)
        assert status.main([str(path), "--prometheus"]) == 0
        assert "repro_bins_processed_total 12" in capsys.readouterr().out

    def test_missing_snapshot_reports(self, tmp_path, capsys):
        assert status.main([str(tmp_path / "absent.json")]) == 1
        assert "no snapshot" in capsys.readouterr().err


class TestTornReads:
    def test_truncated_json_reports_and_returns(self, tmp_path, capsys):
        """A torn concurrent read must not raise — --watch keeps polling."""
        path = tmp_path / "health.json"
        path.write_text('{"version": 1, "bins_processed"')
        assert status.main([str(path)]) == 1
        err = capsys.readouterr().err
        assert "unreadable snapshot" in err
        assert "retrying" in err

    def test_wrong_shape_json_reports_and_returns(self, tmp_path, capsys):
        path = tmp_path / "health.json"
        path.write_text('{"version": 1}')  # parses, but fields are missing
        assert status.main([str(path)]) == 1
        assert "unreadable snapshot" in capsys.readouterr().err

    def test_recovers_once_writer_catches_up(self, tmp_path, capsys):
        path = tmp_path / "health.json"
        path.write_text("{")
        assert status.main([str(path)]) == 1
        _write_snapshot(path)  # the atomic replace lands a whole file
        capsys.readouterr()
        assert status.main([str(path)]) == 0
        assert "bins processed" in capsys.readouterr().out
