"""Unit tests for the topology substrate (network model, Abilene, builder)."""

import networkx as nx
import pytest

from repro.topology import (
    ABILENE_POP_NAMES,
    Customer,
    Link,
    Network,
    PoP,
    TopologyBuilder,
    abilene_topology,
    random_backbone,
)


class TestDataclasses:
    def test_pop_requires_name_and_positive_weight(self):
        with pytest.raises(ValueError):
            PoP(name="", city="x")
        with pytest.raises(ValueError):
            PoP(name="A", region_weight=0)

    def test_link_rejects_self_loop(self):
        with pytest.raises(ValueError):
            Link(source="a", target="a")

    def test_customer_attachment_pops_deduplicates(self):
        customer = Customer(name="c", pop="A", multihomed_pops=("A", "B"))
        assert customer.attachment_pops == ("A", "B")


class TestNetwork:
    def _toy(self):
        return (TopologyBuilder("toy")
                .add_pop("A").add_pop("B").add_pop("C")
                .connect("A", "B", weight=1).connect("B", "C", weight=1)
                .add_customer("ca", "A", prefixes=("10.0.0.0/16",))
                .build())

    def test_od_pairs_count_and_order(self):
        net = self._toy()
        assert net.n_od_pairs == 9
        pairs = net.od_pairs()
        assert pairs[0] == ("A", "A")
        assert pairs[-1] == ("C", "C")
        assert len(pairs) == 9

    def test_od_index_consistent_with_od_pairs(self):
        net = self._toy()
        for index, (origin, destination) in enumerate(net.od_pairs()):
            assert net.od_index(origin, destination) == index

    def test_od_index_unknown_pop(self):
        net = self._toy()
        with pytest.raises(KeyError):
            net.od_index("A", "Z")

    def test_duplicate_pop_rejected(self):
        with pytest.raises(ValueError):
            Network(pops=[PoP("A"), PoP("A")])

    def test_default_router_created_per_pop(self):
        net = self._toy()
        assert len(net.routers_at("A")) == 1
        assert net.routers_at("A")[0].pop == "A"

    def test_customers_at(self):
        net = self._toy()
        assert [c.name for c in net.customers_at("A")] == ["ca"]
        assert net.customers_at("B") == []

    def test_is_connected_true_for_connected(self):
        assert self._toy().is_connected()

    def test_is_connected_false_without_links(self):
        net = Network(pops=[PoP("A"), PoP("B")])
        assert not net.is_connected()

    def test_add_link_validates_routers(self):
        net = self._toy()
        with pytest.raises(ValueError):
            net.add_link(Link(source="A-rtr", target="nonexistent"))

    def test_add_customer_validates_pop(self):
        net = self._toy()
        with pytest.raises(KeyError):
            net.add_customer(Customer(name="x", pop="Z"))

    def test_pop_graph_weights_use_min_parallel(self):
        net = (TopologyBuilder("p")
               .add_pop("A").add_pop("B")
               .connect("A", "B", weight=10)
               .connect("A", "B", weight=3)
               .build())
        graph = net.pop_graph()
        assert graph["A"]["B"]["weight"] == 3

    def test_router_graph_is_directed(self):
        graph = self._toy().router_graph()
        assert isinstance(graph, nx.DiGraph)
        assert graph.has_edge("A-rtr", "B-rtr")
        assert graph.has_edge("B-rtr", "A-rtr")


class TestAbilene:
    def test_eleven_pops_and_121_od_pairs(self, abilene):
        assert abilene.n_pops == 11
        assert abilene.n_od_pairs == 121  # the paper's p

    def test_pop_names_match_operational_codes(self, abilene):
        assert set(abilene.pop_names) == set(ABILENE_POP_NAMES)

    def test_connected(self, abilene):
        assert abilene.is_connected()

    def test_every_pop_has_customers(self, abilene):
        for pop in abilene.pop_names:
            assert len(abilene.customers_at(pop)) >= 1

    def test_calren_is_multihomed_losa_snva(self, abilene):
        calren = abilene.customer("CALREN")
        assert calren.pop == "LOSA"
        assert "SNVA" in calren.multihomed_pops

    def test_customer_prefixes_are_parseable(self, abilene):
        from repro.routing.prefixes import Prefix
        for customer in abilene.customers:
            for prefix in customer.prefixes:
                Prefix.parse(prefix)  # should not raise

    def test_customers_per_pop_limit(self):
        limited = abilene_topology(customers_per_pop=1)
        for pop in limited.pop_names:
            assert len(limited.customers_at(pop)) <= 1


class TestRandomBackbone:
    @pytest.mark.parametrize("n_pops", [2, 4, 8])
    def test_connected_for_various_sizes(self, n_pops):
        net = random_backbone(n_pops, seed=3)
        assert net.n_pops == n_pops
        assert net.is_connected()

    def test_reproducible(self):
        a = random_backbone(6, seed=9)
        b = random_backbone(6, seed=9)
        assert [l.source for l in a.links] == [l.source for l in b.links]

    def test_customers_created(self):
        net = random_backbone(4, seed=1, customers_per_pop=3)
        for pop in net.pop_names:
            assert len(net.customers_at(pop)) == 3

    def test_rejects_single_pop(self):
        with pytest.raises(ValueError):
            random_backbone(1)
