"""Unit tests for the traffic generation substrate."""

import numpy as np
import pytest

from repro.flows.timeseries import TrafficType
from repro.traffic import (
    DiurnalProfile,
    DriftProfile,
    FlowSynthesizer,
    GeneratorConfig,
    GravityModel,
    NoiseModel,
    ODTrafficGenerator,
    SeasonalityModel,
    WeeklyProfile,
    ar1_noise,
    lognormal_noise,
)
from repro.utils.timebins import SECONDS_PER_DAY, TimeBinning


class TestGravityModel:
    def test_matrix_sums_to_total_volume(self, abilene):
        model = GravityModel(abilene, total_volume=1e9, seed=1)
        assert model.mean_matrix().sum() == pytest.approx(1e9, rel=1e-9)

    def test_matrix_nonnegative_and_shape(self, abilene):
        matrix = GravityModel(abilene, seed=1).mean_matrix()
        assert matrix.shape == (11, 11)
        assert np.all(matrix >= 0)

    def test_self_traffic_fraction(self, abilene):
        model = GravityModel(abilene, total_volume=1e9, self_traffic_fraction=0.1, seed=1)
        matrix = model.mean_matrix()
        assert np.trace(matrix) == pytest.approx(0.1e9, rel=1e-9)

    def test_zero_self_fraction(self, abilene):
        model = GravityModel(abilene, self_traffic_fraction=0.0, seed=1)
        assert np.trace(model.mean_matrix()) == 0.0

    def test_larger_pops_send_more(self, abilene):
        model = GravityModel(abilene, mass_jitter=0.0, seed=1)
        matrix = model.mean_matrix()
        names = abilene.pop_names
        nycm_out = matrix[names.index("NYCM")].sum()
        kscy_out = matrix[names.index("KSCY")].sum()
        assert nycm_out > kscy_out  # NYCM has a larger region weight

    def test_mean_vector_matches_od_order(self, abilene):
        model = GravityModel(abilene, seed=1)
        vector = model.mean_vector()
        pairs = abilene.od_pairs()
        index = abilene.od_index("LOSA", "NYCM")
        assert vector[index] == pytest.approx(model.od_mean("LOSA", "NYCM"))
        assert vector.size == len(pairs)

    def test_scaled(self, abilene):
        model = GravityModel(abilene, total_volume=1e9, seed=1)
        doubled = model.scaled(2.0)
        assert doubled.mean_matrix().sum() == pytest.approx(2e9, rel=1e-9)

    def test_reproducible(self, abilene):
        a = GravityModel(abilene, seed=4).mean_matrix()
        b = GravityModel(abilene, seed=4).mean_matrix()
        assert np.allclose(a, b)


class TestSeasonality:
    def test_diurnal_profile_positive_and_periodic(self):
        profile = DiurnalProfile(amplitude=0.5, peak_hour=15.0)
        times = np.arange(0, 2 * SECONDS_PER_DAY, 300)
        values = profile.factor(times)
        assert np.all(values > 0)
        assert np.allclose(values[:288], values[288:576], rtol=1e-9)

    def test_diurnal_peaks_near_peak_hour(self):
        profile = DiurnalProfile(amplitude=0.5, peak_hour=15.0, second_harmonic=0.0)
        times = np.arange(0, SECONDS_PER_DAY, 300)
        values = profile.factor(times)
        peak_bin = int(np.argmax(values))
        assert abs(peak_bin * 300 / 3600 - 15.0) < 0.5

    def test_zero_amplitude_is_flat(self):
        profile = DiurnalProfile(amplitude=0.0, second_harmonic=0.0)
        values = profile.factor(np.arange(0, SECONDS_PER_DAY, 300))
        assert np.allclose(values, 1.0)

    def test_weekly_profile_weekend_dip(self):
        weekly = WeeklyProfile()
        monday = weekly.factor(0.0)
        saturday = weekly.factor(5 * SECONDS_PER_DAY + 100.0)
        assert saturday < monday

    def test_weekly_profile_needs_seven_days(self):
        with pytest.raises(ValueError):
            WeeklyProfile(day_factors=(1.0, 1.0))

    def test_seasonality_model_shape_and_positivity(self):
        binning = TimeBinning(n_bins=288)
        model = SeasonalityModel(n_od_pairs=10, seed=1)
        factors = model.factors(binning)
        assert factors.shape == (288, 10)
        assert np.all(factors > 0)

    def test_seasonality_columns_share_common_trend(self):
        binning = TimeBinning(n_bins=288)
        model = SeasonalityModel(n_od_pairs=20, phase_jitter_hours=0.5, seed=2)
        factors = model.factors(binning)
        correlations = np.corrcoef(factors.T)
        # Per-OD profiles are perturbations of one shared diurnal trend.
        assert np.median(correlations) > 0.8


class TestNoise:
    def test_ar1_noise_stationary_variance(self, rng):
        noise = ar1_noise(20_000, 3, phi=0.6, sigma=2.0, rng=rng)
        assert np.std(noise) == pytest.approx(2.0, rel=0.05)

    def test_ar1_noise_is_correlated(self, rng):
        noise = ar1_noise(20_000, 1, phi=0.8, sigma=1.0, rng=rng).ravel()
        lag1 = np.corrcoef(noise[:-1], noise[1:])[0, 1]
        assert 0.7 < lag1 < 0.9

    def test_ar1_zero_sigma(self, rng):
        assert np.all(ar1_noise(10, 2, phi=0.5, sigma=0.0, rng=rng) == 0.0)

    def test_lognormal_noise_unit_mean(self, rng):
        factors = lognormal_noise(50_000, 1, sigma=0.4, rng=rng)
        assert factors.mean() == pytest.approx(1.0, rel=0.03)
        assert np.all(factors > 0)

    def test_noise_model_apply_preserves_shape_and_positivity(self, rng):
        clean = np.full((100, 5), 50.0)
        model = NoiseModel(multiplicative_sigma=0.2, temporal_correlation=0.3)
        noisy = model.apply(clean, rng)
        assert noisy.shape == clean.shape
        assert np.all(noisy >= 0)

    def test_apply_anchored_scales_with_anchor(self, rng):
        clean = np.full((5000, 2), 100.0)
        anchor = np.array([10.0, 100.0])
        model = NoiseModel(multiplicative_sigma=0.5, temporal_correlation=0.0)
        noisy = model.apply_anchored(clean, anchor, rng)
        std_small = np.std(noisy[:, 0] - 100.0)
        std_large = np.std(noisy[:, 1] - 100.0)
        assert std_large > 5 * std_small

    def test_apply_anchored_validates_anchor_length(self, rng):
        model = NoiseModel()
        with pytest.raises(ValueError):
            model.apply_anchored(np.ones((10, 3)), np.ones(2), rng)


class TestODTrafficGenerator:
    def test_output_shapes_and_types(self, abilene, one_day_binning):
        series = ODTrafficGenerator(abilene, seed=1).generate(one_day_binning)
        assert series.n_bins == 288
        assert series.n_od_pairs == 121
        assert set(series.traffic_types) == set(TrafficType.all())

    def test_reproducible(self, abilene, one_day_binning):
        a = ODTrafficGenerator(abilene, seed=3).generate(one_day_binning)
        b = ODTrafficGenerator(abilene, seed=3).generate(one_day_binning)
        assert a.allclose(b)

    def test_different_seeds_differ(self, abilene, one_day_binning):
        a = ODTrafficGenerator(abilene, seed=3).generate(one_day_binning)
        b = ODTrafficGenerator(abilene, seed=4).generate(one_day_binning)
        assert not a.allclose(b)

    def test_total_volume_close_to_configured(self, abilene, one_day_binning):
        config = GeneratorConfig(total_bytes_per_bin=1e9)
        series = ODTrafficGenerator(abilene, config=config, seed=1).generate(one_day_binning)
        mean_per_bin = series.total_series(TrafficType.BYTES).mean()
        assert 0.6e9 < mean_per_bin < 1.4e9

    def test_traffic_types_coupled(self, abilene, one_day_binning):
        series = ODTrafficGenerator(abilene, seed=1).generate(one_day_binning)
        bytes_total = series.total_series(TrafficType.BYTES)
        packets_total = series.total_series(TrafficType.PACKETS)
        correlation = np.corrcoef(bytes_total, packets_total)[0, 1]
        assert correlation > 0.9

    def test_diurnal_cycle_present(self, abilene):
        binning = TimeBinning(n_bins=2 * 288)
        series = ODTrafficGenerator(abilene, seed=1).generate(binning)
        total = series.total_series(TrafficType.BYTES)
        assert total.max() / total.min() > 1.5

    def test_all_nonnegative(self, abilene, one_day_binning):
        series = ODTrafficGenerator(abilene, seed=2).generate(one_day_binning)
        for traffic_type in TrafficType.all():
            assert np.all(series.matrix(traffic_type) >= 0)


class TestFlowSynthesizer:
    def test_cell_totals_approximately_preserved(self, abilene, rng):
        synthesizer = FlowSynthesizer(abilene, unresolvable_fraction=0.0, seed=1)
        records = synthesizer.synthesize_cell("LOSA", "NYCM", 0.0, 300,
                                              total_bytes=1e6, total_packets=2000,
                                              total_flows=150)
        assert len(records) == 150
        assert sum(r.bytes for r in records) == pytest.approx(1e6, rel=1e-6)
        assert sum(r.packets for r in records) >= 2000 * 0.9

    def test_record_cap_respected(self, abilene):
        synthesizer = FlowSynthesizer(abilene, max_flows_per_cell=50, seed=1)
        records = synthesizer.synthesize_cell("LOSA", "NYCM", 0.0, 300,
                                              total_bytes=1e6, total_packets=2000,
                                              total_flows=5000)
        assert len(records) == 50

    def test_empty_cell_yields_no_records(self, abilene):
        synthesizer = FlowSynthesizer(abilene, seed=1)
        assert synthesizer.synthesize_cell("LOSA", "NYCM", 0.0, 300, 0.0, 0.0, 0.0) == []

    def test_unresolvable_fraction_controls_unknown_addresses(self, abilene):
        synthesizer = FlowSynthesizer(abilene, unresolvable_fraction=0.5, seed=1)
        records = synthesizer.synthesize_cell("LOSA", "NYCM", 0.0, 300,
                                              total_bytes=1e6, total_packets=2000,
                                              total_flows=400)
        unknown = sum(1 for r in records if r.observing_router is None)
        assert 0.35 * len(records) < unknown < 0.65 * len(records)

    def test_records_fall_inside_bin(self, abilene):
        synthesizer = FlowSynthesizer(abilene, seed=2)
        records = synthesizer.synthesize_cell("CHIN", "ATLA", 600.0, 300,
                                              total_bytes=1e5, total_packets=200,
                                              total_flows=20)
        for record in records:
            assert 600.0 <= record.start_time < 900.0
            assert record.end_time <= 900.0 + 1e-6


class TestDriftProfile:
    def test_default_profile_is_stationary_identity(self):
        drift = DriftProfile()
        assert drift.is_stationary
        times = np.arange(0, 3 * SECONDS_PER_DAY, 300)
        assert np.allclose(drift.level_factor(times), 1.0)
        assert np.allclose(drift.noise_scale(times), 1.0)

    def test_level_drift_ramps_linearly_per_day(self):
        drift = DriftProfile(level_drift_per_day=0.1)
        assert not drift.is_stationary
        assert drift.level_factor(0.0) == pytest.approx(1.0)
        assert drift.level_factor(2 * SECONDS_PER_DAY) == pytest.approx(1.2)

    def test_level_shift_steps_at_the_shift_day(self):
        drift = DriftProfile(level_shift=0.5, level_shift_day=2.0)
        assert drift.level_factor(SECONDS_PER_DAY) == pytest.approx(1.0)
        assert drift.level_factor(2 * SECONDS_PER_DAY) == pytest.approx(1.5)

    def test_variance_ramp_scales_noise_sigma(self):
        drift = DriftProfile(variance_ramp_per_day=0.25)
        assert drift.noise_scale(0.0) == pytest.approx(1.0)
        assert drift.noise_scale(4 * SECONDS_PER_DAY) == pytest.approx(2.0)

    def test_factors_clip_away_from_negative(self):
        drift = DriftProfile(level_drift_per_day=-2.0,
                             variance_ramp_per_day=-2.0)
        late = 5 * SECONDS_PER_DAY
        assert drift.level_factor(late) == pytest.approx(0.05)
        assert drift.noise_scale(late) == 0.0

    def test_rejects_invalid_knobs(self):
        with pytest.raises(ValueError):
            DriftProfile(level_shift=-1.0)
        with pytest.raises(ValueError):
            DriftProfile(level_shift_day=-1.0)


class TestDriftingGenerator:
    def test_identity_drift_reproduces_stationary_traffic_bitwise(
            self, abilene):
        binning = TimeBinning(n_bins=288, bin_seconds=300)
        plain = ODTrafficGenerator(abilene, seed=9).generate(binning)
        with_identity = ODTrafficGenerator(
            abilene, config=GeneratorConfig(drift=DriftProfile()),
            seed=9).generate(binning)
        for traffic_type in plain.traffic_types:
            np.testing.assert_array_equal(
                with_identity.matrix(traffic_type),
                plain.matrix(traffic_type))

    def test_level_drift_ramps_the_generated_mean(self, abilene):
        binning = TimeBinning(n_bins=2 * 288, bin_seconds=300)
        config = GeneratorConfig(drift=DriftProfile(level_drift_per_day=0.5))
        series = ODTrafficGenerator(abilene, config=config,
                                    seed=9).generate(binning)
        volumes = series.matrix(TrafficType.BYTES).sum(axis=1)
        first_day, second_day = volumes[:288].mean(), volumes[288:].mean()
        # +50%/day of drift dominates the weekly profile's few-percent dip.
        assert second_day > 1.2 * first_day

    def test_variance_ramp_inflates_late_fluctuations(self, abilene):
        binning = TimeBinning(n_bins=2 * 288, bin_seconds=300)
        config = GeneratorConfig(
            drift=DriftProfile(variance_ramp_per_day=2.0))
        drifting = ODTrafficGenerator(abilene, config=config,
                                      seed=9).generate(binning)
        flat = ODTrafficGenerator(abilene, seed=9).generate(binning)
        residual = (drifting.matrix(TrafficType.BYTES)
                    - flat.matrix(TrafficType.BYTES))
        early = np.abs(residual[:288]).mean()
        late = np.abs(residual[288:]).mean()
        assert late > 1.5 * early

    def test_time_scale_validation(self, abilene):
        noise = NoiseModel(multiplicative_sigma=0.1)
        clean = np.ones((10, 3))
        anchor = np.ones(3)
        with pytest.raises(ValueError, match="time_scale"):
            noise.apply_anchored(clean, anchor, rng=1,
                                 time_scale=np.ones(7))
        with pytest.raises(ValueError, match="non-negative"):
            noise.apply_anchored(clean, anchor, rng=1,
                                 time_scale=-np.ones(10))
