"""Unit tests for RNG management and argument validation."""

import numpy as np
import pytest

from repro.utils.rng import spawn_rng
from repro.utils.validation import (
    ensure_2d,
    ensure_positive,
    ensure_probability,
    require,
)


class TestSpawnRng:
    def test_same_seed_same_stream(self):
        a = spawn_rng(7, stream="x").normal(size=5)
        b = spawn_rng(7, stream="x").normal(size=5)
        assert np.allclose(a, b)

    def test_different_streams_differ(self):
        a = spawn_rng(7, stream="x").normal(size=5)
        b = spawn_rng(7, stream="y").normal(size=5)
        assert not np.allclose(a, b)

    def test_different_seeds_differ(self):
        a = spawn_rng(7, stream="x").normal(size=5)
        b = spawn_rng(8, stream="x").normal(size=5)
        assert not np.allclose(a, b)

    def test_none_uses_default_seed(self):
        a = spawn_rng(None).normal(size=3)
        b = spawn_rng(None).normal(size=3)
        assert np.allclose(a, b)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(1)
        assert spawn_rng(generator) is generator

    def test_generator_with_stream_derives_child(self):
        generator = np.random.default_rng(1)
        child = spawn_rng(generator, stream="child")
        assert child is not generator


class TestRequire:
    def test_passes_when_true(self):
        require(True, "should not raise")

    def test_raises_with_message(self):
        with pytest.raises(ValueError, match="boom"):
            require(False, "boom")


class TestEnsure2d:
    def test_accepts_list_of_lists(self):
        result = ensure_2d([[1, 2], [3, 4]])
        assert result.shape == (2, 2)
        assert result.dtype == float

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            ensure_2d([1.0, 2.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ensure_2d(np.empty((0, 3)))

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            ensure_2d([[1.0, np.nan]])

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            ensure_2d([[1.0, np.inf]])


class TestScalarValidators:
    def test_ensure_positive_accepts(self):
        assert ensure_positive(2.5) == 2.5

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
    def test_ensure_positive_rejects(self, bad):
        with pytest.raises(ValueError):
            ensure_positive(bad)

    def test_ensure_probability_accepts(self):
        assert ensure_probability(0.2) == 0.2

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.5, 2.0, float("nan")])
    def test_ensure_probability_rejects(self, bad):
        with pytest.raises(ValueError):
            ensure_probability(bad)
