"""Unit tests for the statistical threshold helpers."""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.utils.stats import (
    empirical_quantile_threshold,
    f_quantile,
    normal_quantile,
    q_statistic_threshold,
    t_squared_threshold,
)


class TestNormalQuantile:
    def test_median_is_zero(self):
        assert normal_quantile(0.5) == pytest.approx(0.0, abs=1e-12)

    def test_known_value_999(self):
        assert normal_quantile(0.999) == pytest.approx(3.0902, abs=1e-3)

    def test_monotone_in_confidence(self):
        assert normal_quantile(0.99) < normal_quantile(0.999) < normal_quantile(0.9999)

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.1, 1.5])
    def test_rejects_invalid_confidence(self, bad):
        with pytest.raises(ValueError):
            normal_quantile(bad)


class TestFQuantile:
    def test_matches_scipy(self):
        assert f_quantile(4, 2000, 0.999) == pytest.approx(
            scipy_stats.f.ppf(0.999, 4, 2000))

    def test_increases_with_confidence(self):
        assert f_quantile(4, 100, 0.99) < f_quantile(4, 100, 0.999)

    def test_rejects_bad_degrees_of_freedom(self):
        with pytest.raises(ValueError):
            f_quantile(0, 10, 0.99)
        with pytest.raises(ValueError):
            f_quantile(10, 0, 0.99)


class TestTSquaredThreshold:
    def test_formula_matches_definition(self):
        k, n, conf = 4, 2016, 0.999
        expected = k * (n - 1) / (n - k) * scipy_stats.f.ppf(conf, k, n - k)
        assert t_squared_threshold(k, n, conf) == pytest.approx(expected)

    def test_grows_with_k(self):
        assert t_squared_threshold(2, 500) < t_squared_threshold(6, 500)

    def test_approaches_chi2_for_large_n(self):
        # For large n the limit tends to the chi-square quantile with k dof.
        value = t_squared_threshold(4, 200_000, 0.999)
        chi2 = scipy_stats.chi2.ppf(0.999, 4)
        assert value == pytest.approx(chi2, rel=1e-2)

    def test_requires_enough_samples(self):
        with pytest.raises(ValueError):
            t_squared_threshold(4, 5)


class TestQStatisticThreshold:
    def test_zero_residual_variance_gives_zero(self):
        eigenvalues = np.array([5.0, 1.0, 0.0, 0.0])
        assert q_statistic_threshold(eigenvalues, 2) == 0.0

    def test_positive_for_positive_residual(self):
        eigenvalues = np.array([10.0, 5.0, 1.0, 0.5, 0.2])
        assert q_statistic_threshold(eigenvalues, 2) > 0.0

    def test_grows_with_confidence(self):
        eigenvalues = np.array([10.0, 5.0, 1.0, 0.5, 0.2])
        low = q_statistic_threshold(eigenvalues, 2, confidence=0.95)
        high = q_statistic_threshold(eigenvalues, 2, confidence=0.999)
        assert high > low

    def test_grows_with_residual_variance(self):
        small = q_statistic_threshold(np.array([10.0, 1.0, 0.1, 0.1]), 1)
        large = q_statistic_threshold(np.array([10.0, 1.0, 1.0, 1.0]), 1)
        assert large > small

    def test_coverage_on_gaussian_noise(self):
        """On i.i.d. Gaussian data the SPE should rarely exceed the limit."""
        rng = np.random.default_rng(0)
        n, p, k = 4000, 30, 4
        data = rng.normal(size=(n, p))
        centered = data - data.mean(axis=0)
        u, s, vt = np.linalg.svd(centered, full_matrices=False)
        eigenvalues = s**2 / (n - 1)
        residual = centered - centered @ vt[:k].T @ vt[:k]
        spe = np.sum(residual**2, axis=1)
        threshold = q_statistic_threshold(eigenvalues, k, confidence=0.999)
        exceed_rate = np.mean(spe > threshold)
        assert exceed_rate < 0.01

    def test_rejects_bad_n_normal(self):
        with pytest.raises(ValueError):
            q_statistic_threshold(np.array([1.0, 0.5]), 2)

    def test_scale_equivariance(self):
        """Scaling the data by c scales the SPE threshold by c^2."""
        eigenvalues = np.array([10.0, 5.0, 1.0, 0.5, 0.2])
        base = q_statistic_threshold(eigenvalues, 2)
        scaled = q_statistic_threshold(eigenvalues * 9.0, 2)
        assert scaled == pytest.approx(9.0 * base, rel=1e-9)


class TestEmpiricalQuantileThreshold:
    def test_matches_numpy_quantile(self):
        values = np.arange(1000, dtype=float)
        assert empirical_quantile_threshold(values, 0.9) == pytest.approx(
            np.quantile(values, 0.9))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            empirical_quantile_threshold(np.array([]), 0.9)
