"""Unit tests for time binning."""

import pytest

from repro.utils.timebins import (
    TimeBinning,
    bins_per_day,
    bins_per_week,
    week_binning,
    week_windows,
)


class TestBinCounts:
    def test_default_bins_per_day(self):
        assert bins_per_day() == 288

    def test_default_bins_per_week(self):
        assert bins_per_week() == 2016  # the paper's n for one week

    def test_one_minute_bins(self):
        assert bins_per_day(60) == 1440

    def test_rejects_non_divisor(self):
        with pytest.raises(ValueError):
            bins_per_day(7 * 60)


class TestTimeBinning:
    def test_duration(self):
        binning = TimeBinning(n_bins=12, bin_seconds=300)
        assert binning.duration_seconds == 3600
        assert binning.end_seconds == 3600

    def test_bin_of_and_bin_start_roundtrip(self):
        binning = TimeBinning(n_bins=100, bin_seconds=300, start_seconds=1000)
        for index in (0, 1, 50, 99):
            start = binning.bin_start(index)
            assert binning.bin_of(start) == index
            assert binning.bin_of(start + 299) == index

    def test_bin_of_out_of_range(self):
        binning = TimeBinning(n_bins=10, bin_seconds=300)
        with pytest.raises(ValueError):
            binning.bin_of(-1)
        with pytest.raises(ValueError):
            binning.bin_of(3000)

    def test_bin_range(self):
        binning = TimeBinning(n_bins=10, bin_seconds=300, start_seconds=600)
        assert binning.bin_range(0) == (600, 900)
        assert binning.bin_range(9) == (600 + 9 * 300, 600 + 10 * 300)

    def test_bins_between(self):
        binning = TimeBinning(n_bins=10, bin_seconds=300)
        assert binning.bins_between(0, 300) == [0]
        assert binning.bins_between(0, 301) == [0, 1]
        assert binning.bins_between(450, 950) == [1, 2, 3]

    def test_bins_between_clamps_to_range(self):
        binning = TimeBinning(n_bins=4, bin_seconds=300)
        assert binning.bins_between(-1000, 10_000) == [0, 1, 2, 3]

    def test_duration_minutes(self):
        binning = TimeBinning(n_bins=10, bin_seconds=300)
        assert binning.duration_minutes(2) == 10.0

    def test_rebin_factor(self):
        fine = TimeBinning(n_bins=10, bin_seconds=60)
        assert fine.rebin_factor(300) == 5
        with pytest.raises(ValueError):
            fine.rebin_factor(90)

    def test_len_and_iter(self):
        binning = TimeBinning(n_bins=5, bin_seconds=300)
        assert len(binning) == 5
        assert list(binning) == [0, 1, 2, 3, 4]

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            TimeBinning(n_bins=0, bin_seconds=300)
        with pytest.raises(ValueError):
            TimeBinning(n_bins=10, bin_seconds=0)

    def test_index_bounds(self):
        binning = TimeBinning(n_bins=3, bin_seconds=300)
        with pytest.raises(IndexError):
            binning.bin_start(3)


class TestWeekBinning:
    def test_covers_requested_weeks(self):
        binning = week_binning(weeks=2)
        assert binning.n_bins == 2 * 2016

    def test_rejects_zero_weeks(self):
        with pytest.raises(ValueError):
            week_binning(weeks=0)


class TestWeekWindows:
    def test_tiles_multiple_weeks(self):
        windows = week_windows(2 * 2016 + 500)
        assert windows == [(0, 2016), (2016, 4032), (4032, 4532)]

    def test_drops_too_short_trailing_window(self):
        windows = week_windows(2016 + 3, min_bins=10)
        assert windows == [(0, 2016)]

    def test_short_dataset_is_one_window(self):
        assert week_windows(500) == [(0, 500)]

    def test_empty_dataset_has_no_windows(self):
        assert week_windows(0) == []

    def test_rejects_invalid_arguments(self):
        with pytest.raises(ValueError):
            week_windows(-1)
        with pytest.raises(ValueError):
            week_windows(100, min_bins=0)
