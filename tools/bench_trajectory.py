#!/usr/bin/env python
"""Consolidate benchmark JSON artifacts into the BENCH_streaming.json
trajectory and diff a run against the committed baseline.

The streaming benchmarks (``benchmarks/test_bench_sharded.py``,
``benchmarks/test_bench_lowrank.py``, ...) each write a JSON artifact under
``benchmarks/artifacts/``.  This tool folds them into one
``BENCH_streaming.json`` at the repo root — the per-PR perf trajectory,
versioned by git history — and lets CI fail a PR that regresses a tracked
metric beyond a tolerance:

* ``consolidate`` merges every artifact into the trajectory file (each
  top-level record is keyed by its ``"benchmark"`` name; nested sections,
  like the two halves of ``bench_lowrank.json``, are flattened with their
  section key);
* ``check`` compares the *portable* metrics of the current artifacts
  against the committed baseline: **speedup ratios** (any numeric field
  whose name contains ``speedup``) may not fall below
  ``baseline * (1 - tolerance)``, and **parity recalls** (``recall`` /
  ``span_recall`` inside a ``parity`` object) may not fall below
  ``baseline - recall_tolerance`` (absolute).  Raw bins/sec throughputs
  are recorded in the trajectory but never gated — they are machine-bound,
  ratios are not — and a record whose own ``gate.enforced`` is false
  (the benchmark itself judged this machine un-baselined, e.g.
  ``BENCH_SHARDED_NO_GATE`` on a small CI runner) has its speedup ratios
  skipped too.  Parity recalls are always gated, but a benchmark that
  documents its own looser floor in the record's gate (e.g.
  ``gate.span_recall_floor``) wins over ``baseline - recall_tolerance``:
  the trajectory is a drift tripwire, the bench owns its tolerance.

Usage::

    python tools/bench_trajectory.py consolidate
    python tools/bench_trajectory.py check --tolerance 0.5 --recall-tolerance 0.05
    python tools/bench_trajectory.py check --summary "$GITHUB_STEP_SUMMARY"

A baseline record with no fresh artifact is an **error** (exit code 2,
``MISSING:`` messages): a benchmark that crashes before writing its JSON
must not slip past the gate, and an empty artifact directory means the
benchmarks did not run at all.  Pass ``--allow-missing`` for deliberate
partial local runs — absent benchmarks are then skipped with a note (an
empty artifact directory stays an error even so).  Unknown new benchmarks
pass and should be consolidated into the baseline in the same PR.

``--summary PATH`` appends a markdown comparison table (benchmark, metric,
baseline, current, floor, status) to *PATH* — CI points it at
``$GITHUB_STEP_SUMMARY`` so trajectory drift is readable from the run page
without downloading artifacts.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, Iterator, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_ARTIFACTS = REPO_ROOT / "benchmarks" / "artifacts"
DEFAULT_BASELINE = REPO_ROOT / "BENCH_streaming.json"
SCHEMA_VERSION = 1


def collect_records(artifact_dir: Path) -> Dict[str, Dict]:
    """All benchmark records in *artifact_dir*, keyed by benchmark name.

    A file may hold one record (with a ``"benchmark"`` key) or a mapping of
    section name to record; sections inherit their record's own
    ``"benchmark"`` name when present.
    """
    records: Dict[str, Dict] = {}
    for path in sorted(artifact_dir.glob("*.json")):
        payload = json.loads(path.read_text())
        candidates = ([payload] if "benchmark" in payload
                      else [v for v in payload.values() if isinstance(v, dict)])
        for record in candidates:
            name = record.get("benchmark")
            if isinstance(name, str) and name:
                records[name] = record
    return records


def consolidate(artifact_dir: Path, output: Path) -> Dict:
    """Merge the artifacts into the trajectory file and return the payload.

    Records already in the trajectory but absent from the artifact
    directory are kept (a partial local benchmark run must not silently
    drop another benchmark's baseline — and thereby its gating).
    """
    records: Dict[str, Dict] = {}
    if output.is_file():
        records.update(json.loads(output.read_text()).get("benchmarks", {}))
    records.update(collect_records(artifact_dir))
    payload = {"schema": SCHEMA_VERSION, "benchmarks": records}
    output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def _speedup_metrics(record: Dict, prefix: str = "") -> Iterator[Tuple[str, float]]:
    for key, value in record.items():
        if isinstance(value, dict) and key != "gate":
            yield from _speedup_metrics(value, f"{prefix}{key}.")
        elif isinstance(value, (int, float)) and "speedup" in key:
            yield f"{prefix}{key}", float(value)


def _recall_metrics(record: Dict, prefix: str = "") -> Iterator[Tuple[str, float]]:
    parity = record.get("parity")
    if not isinstance(parity, dict):
        return
    for section_key, section in parity.items():
        if isinstance(section, dict):
            yield from ((f"{prefix}parity.{section_key}.{k}", float(v))
                        for k, v in section.items()
                        if k in ("recall", "span_recall")
                        and isinstance(v, (int, float)))
        elif (section_key in ("recall", "span_recall")
              and isinstance(section, (int, float))):
            yield f"{prefix}parity.{section_key}", float(section)


def _speedup_gate_enforced(record: Dict) -> bool:
    """Whether the benchmark itself considered this machine gate-worthy."""
    gate = record.get("gate")
    return not (isinstance(gate, dict) and gate.get("enforced") is False)


def compare(baseline_path: Path, artifact_dir: Path, tolerance: float,
            recall_tolerance: float = 0.05,
            allow_missing: bool = False) -> Tuple[List[str], List[str], List[Dict]]:
    """``(regressions, missing, rows)`` of the current artifacts vs baseline.

    *regressions* are tolerance violations of tracked metrics; *missing*
    are baseline records (or the whole artifact directory) that produced no
    fresh artifact this run — a distinct failure class, because a benchmark
    that crashes before writing JSON must not read as a pass.  *rows* is
    the full comparison table (one row per tracked metric) for the
    markdown summary.
    """
    if not baseline_path.is_file():
        print(f"no baseline at {baseline_path}; nothing to check")
        return [], [], []
    baseline = json.loads(baseline_path.read_text()).get("benchmarks", {})
    current = collect_records(artifact_dir) if artifact_dir.is_dir() else {}
    failures: List[str] = []
    missing: List[str] = []
    rows: List[Dict] = []
    if baseline and not current:
        missing.append(
            f"no benchmark artifacts at all in {artifact_dir} — the "
            f"benchmarks did not run, or crashed before writing JSON")
        return failures, missing, rows

    def row(name, metric, kind, baseline_value, value, floor, status):
        rows.append({"benchmark": name, "metric": metric, "kind": kind,
                     "baseline": baseline_value, "current": value,
                     "floor": floor, "status": status})

    for name, reference in sorted(baseline.items()):
        record = current.get(name)
        if record is None:
            if allow_missing:
                print(f"note: benchmark {name!r} not in this run; skipped")
                row(name, "-", "-", None, None, None, "skipped (not run)")
            else:
                missing.append(
                    f"benchmark {name!r} is in the baseline but produced no "
                    f"fresh artifact (crashed before writing JSON, or not "
                    f"selected — pass --allow-missing for partial runs)")
                row(name, "-", "-", None, None, None, "MISSING")
            continue
        gate_enforced = _speedup_gate_enforced(record)
        if not gate_enforced:
            print(f"note: {name!r} ran with its speedup gate disabled on "
                  f"this machine; speedup ratios recorded, not checked")
        current_speedups = dict(_speedup_metrics(record))
        for metric, floor_value in _speedup_metrics(reference):
            value = current_speedups.get(metric)
            floor = floor_value * (1.0 - tolerance)
            if not gate_enforced:
                row(name, metric, "speedup", floor_value, value, None,
                    "not gated (machine)")
            elif value is None:
                failures.append(f"{name}: tracked metric {metric!r} "
                                f"disappeared from the artifact")
                row(name, metric, "speedup", floor_value, None, floor,
                    "MISSING METRIC")
            elif value < floor:
                failures.append(
                    f"{name}: {metric} regressed to {value:.3f} "
                    f"(baseline {floor_value:.3f}, floor {floor:.3f})")
                row(name, metric, "speedup", floor_value, value, floor,
                    "REGRESSION")
            else:
                row(name, metric, "speedup", floor_value, value, floor, "ok")
        current_recalls = dict(_recall_metrics(record))
        gate = record.get("gate") if isinstance(record.get("gate"), dict) else {}
        for metric, baseline_value in _recall_metrics(reference):
            value = current_recalls.get(metric)
            floor = baseline_value - recall_tolerance
            # A bench that documents its own floor for this recall (e.g.
            # gate.span_recall_floor) owns the tolerance when it is looser.
            documented = gate.get(f"{metric.rsplit('.', 1)[-1]}_floor")
            if isinstance(documented, (int, float)):
                floor = min(floor, float(documented))
            if value is None:
                failures.append(f"{name}: tracked metric {metric!r} "
                                f"disappeared from the artifact")
                row(name, metric, "recall", baseline_value, None, floor,
                    "MISSING METRIC")
            elif value < floor:
                failures.append(
                    f"{name}: {metric} regressed to {value:.3f} "
                    f"(baseline {baseline_value:.3f}, floor {floor:.3f})")
                row(name, metric, "recall", baseline_value, value, floor,
                    "REGRESSION")
            else:
                row(name, metric, "recall", baseline_value, value, floor,
                    "ok")
    return failures, missing, rows


def check(baseline_path: Path, artifact_dir: Path, tolerance: float,
          recall_tolerance: float = 0.05,
          allow_missing: bool = False) -> List[str]:
    """All failure messages (regressions + missing) for the current run."""
    failures, missing, _ = compare(baseline_path, artifact_dir, tolerance,
                                   recall_tolerance, allow_missing)
    return failures + missing


def _format_value(value) -> str:
    if value is None:
        return "-"
    return f"{value:.3f}" if isinstance(value, float) else str(value)


def render_markdown(rows: List[Dict], failures: List[str],
                    missing: List[str]) -> str:
    """The comparison table as GitHub-flavored markdown (step summaries)."""
    lines = ["### Benchmark trajectory vs committed baseline", ""]
    if rows:
        lines += ["| Benchmark | Metric | Kind | Baseline | Current | Floor "
                  "| Status |",
                  "|---|---|---|---|---|---|---|"]
        for entry in rows:
            status = entry["status"]
            marker = ("✅" if status == "ok"
                      else "❌" if "REGRESSION" in status or "MISSING" in status
                      else "⏭️")
            lines.append(
                f"| {entry['benchmark']} | {entry['metric']} "
                f"| {entry['kind']} | {_format_value(entry['baseline'])} "
                f"| {_format_value(entry['current'])} "
                f"| {_format_value(entry['floor'])} | {marker} {status} |")
    else:
        lines.append("_no tracked metrics compared_")
    if failures or missing:
        lines += ["", "**Failures:**", ""]
        lines += [f"- `{message}`" for message in failures + missing]
    else:
        lines += ["", "All tracked metrics within tolerance."]
    return "\n".join(lines) + "\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("command", choices=("consolidate", "check"))
    parser.add_argument("--artifacts", type=Path, default=DEFAULT_ARTIFACTS,
                        help="directory of per-benchmark JSON artifacts")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE,
                        help="trajectory file (committed baseline)")
    parser.add_argument("--tolerance", type=float, default=0.5,
                        help="allowed relative drop of speedup ratios")
    parser.add_argument("--recall-tolerance", type=float, default=0.05,
                        help="allowed absolute drop of parity recalls")
    parser.add_argument("--allow-missing", action="store_true",
                        help="skip baseline records with no fresh artifact "
                             "(deliberate partial local runs) instead of "
                             "failing with exit code 2")
    parser.add_argument("--summary", type=Path, default=None,
                        help="append a markdown comparison table to this "
                             "file (point at $GITHUB_STEP_SUMMARY in CI)")
    args = parser.parse_args(argv)

    if args.command == "consolidate":
        payload = consolidate(args.artifacts, args.baseline)
        print(f"consolidated {len(payload['benchmarks'])} benchmark "
              f"record(s) into {args.baseline}")
        return 0

    failures, missing, rows = compare(args.baseline, args.artifacts,
                                      args.tolerance, args.recall_tolerance,
                                      args.allow_missing)
    if args.summary is not None:
        with open(args.summary, "a", encoding="utf-8") as handle:
            handle.write(render_markdown(rows, failures, missing))
    for message in failures:
        print(f"REGRESSION: {message}", file=sys.stderr)
    for message in missing:
        print(f"MISSING: {message}", file=sys.stderr)
    if not failures and not missing:
        print("benchmark trajectory within tolerance of the baseline")
    if failures:
        return 1
    return 2 if missing else 0


if __name__ == "__main__":
    sys.exit(main())
