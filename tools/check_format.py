#!/usr/bin/env python
"""Dependency-free formatting gate for the mechanical invariants.

``ruff format`` owns full layout, but it is a binary dependency the
development image does not always carry (air-gapped boxes), so its check
cannot be the *only* formatting enforcement.  This script gates the
mechanical invariants every tracked Python/TOML/YAML/Markdown file must
satisfy, with nothing beyond the standard library:

* UTF-8 decodable, LF line endings, and a final newline;
* no tab characters in Python source (indentation is spaces);
* no trailing whitespace;
* Python lines at most 99 characters (the ``tool.ruff`` line-length),
  except lines whose overflow is a URL (links do not wrap).

Usage::

    python tools/check_format.py          # check, exit 1 on violations
    python tools/check_format.py --fix    # rewrite the fixable classes

``--fix`` repairs trailing whitespace, CRLF endings, and missing final
newlines in place; decode failures, tabs, and over-long lines are
reported but never auto-edited (they need a human).
"""

from __future__ import annotations

import argparse
import re
import subprocess
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
MAX_LINE = 99
CHECKED_SUFFIXES = {".py", ".toml", ".yml", ".yaml", ".md", ".json"}
#: Machine-generated reference material (paper abstracts, retrieved
#: exemplar snippets) arrives verbatim from external sources — linting it
#: would just fight the generator.
EXCLUDED = {"PAPER.md", "PAPERS.md", "SNIPPETS.md", "ISSUE.md"}
_URL = re.compile(r"https?://\S+")


def tracked_files() -> List[Path]:
    """Files under git control with a checked suffix (never venvs/artifacts)."""
    listing = subprocess.run(
        ["git", "ls-files"], cwd=REPO_ROOT, check=True,
        capture_output=True, text=True).stdout
    return [REPO_ROOT / name for name in listing.splitlines()
            if Path(name).suffix in CHECKED_SUFFIXES
            and Path(name).name not in EXCLUDED]


def violations(path: Path, data: bytes) -> Iterator[Tuple[int, str]]:
    """``(line_number, message)`` pairs; line 0 flags whole-file problems."""
    try:
        text = data.decode("utf-8")
    except UnicodeDecodeError as error:
        yield 0, f"not valid UTF-8: {error}"
        return
    if "\r" in text:
        yield 0, "carriage returns (CRLF or CR line endings)"
    if text and not text.endswith("\n"):
        yield 0, "no newline at end of file"
    is_python = path.suffix == ".py"
    for number, line in enumerate(text.splitlines(), start=1):
        if line != line.rstrip():
            yield number, "trailing whitespace"
        if is_python and "\t" in line:
            yield number, "tab character in Python source"
        if (is_python and len(line) > MAX_LINE
                and not _URL.search(line[MAX_LINE - 20:])):
            yield number, f"line is {len(line)} chars (max {MAX_LINE})"


def fix(data: bytes) -> bytes:
    """The fixable subset: CR endings, trailing whitespace, final newline."""
    text = data.decode("utf-8")
    lines = [line.rstrip() for line in
             text.replace("\r\n", "\n").replace("\r", "\n").split("\n")]
    fixed = "\n".join(lines)
    if fixed and not fixed.endswith("\n"):
        fixed += "\n"
    return fixed.encode("utf-8")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fix", action="store_true",
                        help="rewrite fixable violations in place")
    args = parser.parse_args(argv)

    failed = 0
    for path in tracked_files():
        data = path.read_bytes()
        if args.fix:
            repaired = fix(data)
            if repaired != data:
                path.write_bytes(repaired)
                print(f"fixed: {path.relative_to(REPO_ROOT)}")
                data = repaired
        for number, message in violations(path, data):
            failed += 1
            where = f":{number}" if number else ""
            print(f"{path.relative_to(REPO_ROOT)}{where}: {message}",
                  file=sys.stderr)
    if failed:
        print(f"\n{failed} formatting violation(s); run "
              f"`python tools/check_format.py --fix` for the fixable ones",
              file=sys.stderr)
        return 1
    print("formatting invariants hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
