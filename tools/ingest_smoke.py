#!/usr/bin/env python
"""End-to-end ingestion smoke test: CSV round-trip parity + CLI drive.

The ingestion plane's acceptance bar, exercised the way an operator
would hit it:

1. synthesize half a day of Abilene OD traffic, expand it to flow
   records and export them to a CSV flow-record file;
2. parse + bin the CSV back through :class:`repro.ingest.FlowCsvSource`
   and require **byte-identical** OD matrices and identical detection
   events versus aggregating the very same records in memory
   (:func:`repro.ingest.round_trip_check`);
3. repeat with 1-in-2 packet sampling and inversion enabled;
4. drive the real service CLI (``python -m repro.service --ingest-csv``)
   as a subprocess over the same export and require a clean, uneventful
   exit with every bin processed.

Exit code 0 iff every phase held.  Used by the ``ingest-smoke`` CI job:

    PYTHONPATH=src python tools/ingest_smoke.py
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile

from repro.datasets import DatasetConfig, generate_abilene_dataset
from repro.flows.sampling import SamplingConfig
from repro.ingest import round_trip_check
from repro.streaming import StreamingConfig
from repro.topology import abilene_topology

N_BINS = 144  # half a day of 5-minute bins
SEED = 7
FLOWS_PER_CELL = 2
CONFIG = StreamingConfig(min_train_bins=96, recalibrate_every_bins=48)


def _require(condition, message):
    if not condition:
        print(f"FAIL: {message}")
        sys.exit(1)


def _check(name, report):
    print(f"{name}: matrices_identical={report.matrices_identical} "
          f"events={report.n_direct_events}/{report.n_ingest_events} "
          f"max_abs_difference={report.max_abs_difference} "
          f"records={report.n_records_exported}")
    _require(report.ok, f"{name} round trip is not byte-identical")
    _require(report.max_abs_difference == 0.0,
             f"{name} round trip differs by {report.max_abs_difference}")


def main() -> int:
    network = abilene_topology()
    dataset = generate_abilene_dataset(DatasetConfig(weeks=1.0 / 7.0),
                                       seed=SEED)
    series = dataset.series.window(0, N_BINS)

    with tempfile.TemporaryDirectory(prefix="ingest-smoke-") as tmp:
        plain_csv = os.path.join(tmp, "flows.csv")
        _check("plain", round_trip_check(
            series, network, plain_csv, seed=SEED,
            max_flows_per_cell=FLOWS_PER_CELL, streaming_config=CONFIG))
        _check("sampled", round_trip_check(
            series, network, os.path.join(tmp, "sampled.csv"), seed=SEED,
            max_flows_per_cell=FLOWS_PER_CELL,
            sampling=SamplingConfig(sampling_rate=0.5),
            streaming_config=CONFIG))

        # The same export must drive the real CLI end to end.
        process = subprocess.run(
            [sys.executable, "-m", "repro.service",
             "--store", os.path.join(tmp, "events.sqlite"),
             "--ingest-csv", plain_csv,
             "--chunk-size", "48",
             "--min-train-bins", "96",
             "--recalibrate-every-bins", "48"],
            capture_output=True, text=True)
        _require(process.returncode == 0,
                 f"service CLI exited {process.returncode}: "
                 f"{process.stderr.strip()}")
        payload = json.loads(process.stdout.splitlines()[-1])
        print(f"cli: n_bins_processed={payload['n_bins_processed']} "
              f"events_stored={payload['events_stored']}")
        _require(payload["interrupted"] is False, "CLI run was interrupted")
        _require(payload["n_bins_processed"] == N_BINS,
                 f"CLI processed {payload['n_bins_processed']} bins, "
                 f"expected {N_BINS}")

    print("ingest smoke: all phases held")
    return 0


if __name__ == "__main__":
    sys.exit(main())
