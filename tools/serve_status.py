#!/usr/bin/env python
"""Serve a run's health snapshot and event store over read-only HTTP.

A thin ``http.server`` wrapper around the artifacts a detection service
leaves on disk — no write path, no authentication, meant for localhost or
a trusted network segment:

    python tools/serve_status.py --snapshot health.json \\
        --store events.sqlite --port 8321

Endpoints:

* ``/health``   — the latest health snapshot, as JSON;
* ``/status``   — the snapshot rendered as the operator table (text);
* ``/metrics``  — Prometheus text exposition of the snapshot's registry;
* ``/events``   — recent stored events as JSON
  (``?limit=N&severity=...&label=...&min_confidence=...``);
* ``/summary``  — run-level roll-up of the store (counts, digest);
* ``/``         — endpoint index.

Run with ``PYTHONPATH=src`` from the repo root (or an installed package).
"""

from __future__ import annotations

import argparse
import json
import sys
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

_INDEX = {
    "endpoints": {
        "/health": "latest health snapshot (JSON)",
        "/status": "snapshot rendered as the operator table (text)",
        "/metrics": "Prometheus text exposition of the snapshot registry",
        "/events": "stored events (JSON); "
                   "?limit=N&severity=...&label=...&min_confidence=...",
        "/summary": "run-level roll-up of the event store (JSON)",
    }
}


def _first(query, name, cast, default=None):
    """First query-string value of *name* cast via *cast* (or *default*)."""
    values = query.get(name)
    if not values:
        return default
    return cast(values[0])


def make_server(host: str, port: int,
                snapshot_path: str = "",
                store_path: str = "") -> ThreadingHTTPServer:
    """Build the status server (bind only; call ``serve_forever`` to run).

    *port* may be ``0`` to bind an ephemeral port (tests); the bound
    address is on ``server.server_address``.  Either artifact path may be
    empty — its endpoints then answer 503 instead of failing to start, so
    the server can come up before the service's first snapshot/event.
    """
    from repro.service.store import EventStore
    from repro.telemetry import (HealthSnapshot, prometheus_exposition,
                                 render_status_table)

    class StatusHandler(BaseHTTPRequestHandler):
        server_version = "repro-status/1"

        # ------------------------------------------------------------ #
        def log_message(self, format, *args):  # noqa: A002 - stdlib name
            pass  # quiet by default; the CLI prints the bind address once

        def _respond(self, status: int, content_type: str,
                     body: bytes) -> None:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _json(self, payload, status: int = 200) -> None:
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
            self._respond(status, "application/json; charset=utf-8", body)

        def _text(self, text: str, status: int = 200,
                  content_type: str = "text/plain; charset=utf-8") -> None:
            self._respond(status, content_type, text.encode("utf-8"))

        def _error(self, status: int, message: str) -> None:
            self._json({"error": message}, status=status)

        # ------------------------------------------------------------ #
        def _snapshot(self):
            if not snapshot_path:
                self._error(503, "no snapshot path configured")
                return None
            try:
                return HealthSnapshot.read(snapshot_path)
            except FileNotFoundError:
                self._error(503, f"no snapshot at {snapshot_path} yet")
            except (json.JSONDecodeError, KeyError, TypeError) as error:
                # Torn concurrent read: the writer replaces atomically, so
                # the next poll will see a whole file.
                self._error(503, f"snapshot momentarily unreadable "
                                 f"({type(error).__name__}); retry")
            return None

        def _store(self):
            if not store_path:
                self._error(503, "no event-store path configured")
                return None
            try:
                return EventStore(store_path)
            except Exception as error:  # noqa: BLE001 - surface as 503
                self._error(503, f"event store unreadable "
                                 f"({type(error).__name__}: {error})")
                return None

        # ------------------------------------------------------------ #
        def do_GET(self) -> None:  # noqa: N802 - stdlib handler name
            parsed = urlparse(self.path)
            route = parsed.path.rstrip("/") or "/"
            query = parse_qs(parsed.query)
            try:
                if route == "/":
                    self._json(_INDEX)
                elif route == "/health":
                    snapshot = self._snapshot()
                    if snapshot is not None:
                        self._json(snapshot.to_dict())
                elif route == "/status":
                    snapshot = self._snapshot()
                    if snapshot is not None:
                        self._text(render_status_table(snapshot))
                elif route == "/metrics":
                    snapshot = self._snapshot()
                    if snapshot is not None:
                        self._text(
                            prometheus_exposition(snapshot.registry()),
                            content_type="text/plain; version=0.0.4; "
                                         "charset=utf-8")
                elif route == "/events":
                    store = self._store()
                    if store is not None:
                        with store:
                            events = store.query(
                                start_bin=_first(query, "start_bin", int),
                                end_bin=_first(query, "end_bin", int),
                                traffic_label=_first(query, "label", str),
                                severity=_first(query, "severity", str),
                                min_confidence=_first(
                                    query, "min_confidence", float),
                                limit=_first(query, "limit", int, 100))
                            self._json({
                                "events": [e.to_dict() for e in events],
                                "n_returned": len(events),
                            })
                elif route == "/summary":
                    store = self._store()
                    if store is not None:
                        with store:
                            self._json({
                                "summary": store.summary().to_dict(),
                                "count": store.count(),
                                "table_digest": store.table_digest(),
                            })
                else:
                    self._error(404, f"unknown endpoint {route!r}")
            except BrokenPipeError:  # pragma: no cover - client went away
                pass
            except (ValueError, TypeError) as error:
                self._error(400, f"bad request: {error}")

    return ThreadingHTTPServer((host, port), StatusHandler)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8321)
    parser.add_argument("--snapshot", default="",
                        help="health snapshot JSON written by the run "
                             "(StreamingConfig.telemetry_snapshot_path)")
    parser.add_argument("--store", default="",
                        help="sqlite event-store path written by the "
                             "detection service")
    args = parser.parse_args(argv)

    if not args.snapshot and not args.store:
        print("error: nothing to serve — pass --snapshot and/or --store",
              file=sys.stderr)
        return 2
    try:
        server = make_server(args.host, args.port, args.snapshot, args.store)
    except ImportError:
        print("error: cannot import repro — run with PYTHONPATH=src from "
              "the repo root", file=sys.stderr)
        return 2
    host, port = server.server_address[:2]
    print(f"serving status on http://{host}:{port}/ "
          f"(snapshot={args.snapshot or '-'} store={args.store or '-'})",
          flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
