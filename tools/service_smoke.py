#!/usr/bin/env python
"""End-to-end service smoke test: SIGTERM, restart, byte-identical table.

Drives the real CLI (``python -m repro.service``) as a subprocess, the way
an init system would:

1. start the service over a throttled synthetic feed;
2. SIGTERM it mid-stream and require a clean exit (code 0, interrupted
   run, checkpoint on disk);
3. restart it against the same store + checkpoint and let it finish;
4. run an uninterrupted reference service on a fresh store and require the
   two stores' ``table_digest`` to match **byte for byte**.

Exit code 0 iff every phase held.  Used by the ``service-smoke`` CI job:

    PYTHONPATH=src python tools/service_smoke.py
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time

CHUNK_SIZE = 48
DAYS = 3
SEED = 7


def _cli_args(store, checkpoint=None, chunk_sleep=0.0):
    args = [sys.executable, "-m", "repro.service",
            "--store", store,
            "--days", str(DAYS),
            "--chunk-size", str(CHUNK_SIZE),
            "--seed", str(SEED)]
    if checkpoint is not None:
        args += ["--checkpoint", checkpoint]
    if chunk_sleep > 0:
        args += ["--chunk-sleep", str(chunk_sleep)]
    return args


def _final_json(stdout: str) -> dict:
    """The service's last stdout line is its result summary."""
    lines = [line for line in stdout.splitlines() if line.strip()]
    if not lines:
        raise AssertionError("service produced no stdout")
    return json.loads(lines[-1])


def _run(args, env) -> dict:
    completed = subprocess.run(args, env=env, capture_output=True, text=True,
                               timeout=300)
    if completed.returncode != 0:
        raise AssertionError(
            f"service exited {completed.returncode}\n"
            f"stdout:\n{completed.stdout}\nstderr:\n{completed.stderr}")
    return _final_json(completed.stdout)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--sigterm-after", type=float, default=2.5,
                        metavar="SECONDS",
                        help="how long to let the throttled service run "
                             "before SIGTERM")
    parser.add_argument("--chunk-sleep", type=float, default=0.25,
                        metavar="SECONDS",
                        help="throttle of the interrupted phase (makes the "
                             "SIGTERM land mid-stream deterministically)")
    args = parser.parse_args(argv)

    env = dict(os.environ)
    env.setdefault("PYTHONPATH", "src")

    with tempfile.TemporaryDirectory(prefix="service-smoke-") as workdir:
        store = os.path.join(workdir, "events.sqlite")
        checkpoint = os.path.join(workdir, "ckpt")
        reference_store = os.path.join(workdir, "reference.sqlite")

        # --- phase 1: SIGTERM mid-stream, clean exit ------------------ #
        print(f"[1/3] starting service (throttle "
              f"{args.chunk_sleep}s/chunk), SIGTERM in "
              f"{args.sigterm_after}s ...", flush=True)
        process = subprocess.Popen(
            _cli_args(store, checkpoint, chunk_sleep=args.chunk_sleep),
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True)
        try:
            time.sleep(args.sigterm_after)
            process.send_signal(signal.SIGTERM)
            stdout, stderr = process.communicate(timeout=300)
        except BaseException:
            process.kill()
            raise
        if process.returncode != 0:
            print(f"FAIL: SIGTERMed service exited "
                  f"{process.returncode}, expected 0\nstdout:\n{stdout}\n"
                  f"stderr:\n{stderr}", file=sys.stderr)
            return 1
        interrupted = _final_json(stdout)
        if not interrupted["interrupted"]:
            print("FAIL: the run finished before the SIGTERM landed — "
                  "raise --chunk-sleep or lower --sigterm-after",
                  file=sys.stderr)
            return 1
        print(f"      clean exit 0 after "
              f"{interrupted['n_bins_processed']} bins, "
              f"{interrupted['store_count']} events stored", flush=True)

        # --- phase 2: restart from the checkpoint, run to completion - #
        print("[2/3] restarting from the checkpoint ...", flush=True)
        resumed = _run(_cli_args(store, checkpoint), env)
        if resumed["interrupted"]:
            print("FAIL: the restarted run did not finish", file=sys.stderr)
            return 1
        if resumed["n_bins_processed"] <= interrupted["n_bins_processed"]:
            print("FAIL: the restart did not resume past the interruption",
                  file=sys.stderr)
            return 1

        # --- phase 3: uninterrupted reference, digest comparison ------ #
        print("[3/3] uninterrupted reference run ...", flush=True)
        reference = _run(_cli_args(reference_store), env)
        if resumed["table_digest"] != reference["table_digest"]:
            print(f"FAIL: event tables diverged\n"
                  f"  interrupted+restarted: {resumed['table_digest']} "
                  f"({resumed['store_count']} events)\n"
                  f"  uninterrupted:         {reference['table_digest']} "
                  f"({reference['store_count']} events)", file=sys.stderr)
            return 1
        print(f"PASS: byte-identical event table across SIGTERM + restart "
              f"({reference['store_count']} events, digest "
              f"{reference['table_digest'][:16]}...)", flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
