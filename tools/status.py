#!/usr/bin/env python
"""Render a live streaming run's health snapshot.

The pipeline writes a :class:`repro.telemetry.HealthSnapshot` JSON file
periodically when ``StreamingConfig(telemetry=True,
telemetry_snapshot_path=...)`` is set.  This CLI renders the latest one:

    python tools/status.py /path/to/health.json             # status table
    python tools/status.py /path/to/health.json --prometheus # scrape text
    python tools/status.py /path/to/health.json --watch 2    # live refresh

Run with ``PYTHONPATH=src`` from the repo root (or an installed package).
"""

from __future__ import annotations

import argparse
import json
import sys
import time


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("snapshot", help="path to the health snapshot JSON "
                        "(see StreamingConfig.telemetry_snapshot_path)")
    parser.add_argument("--prometheus", action="store_true",
                        help="emit the Prometheus text exposition instead "
                        "of the status table")
    parser.add_argument("--watch", type=float, default=0.0, metavar="SECONDS",
                        help="re-render every SECONDS until interrupted")
    args = parser.parse_args(argv)

    try:
        from repro.telemetry import (HealthSnapshot, prometheus_exposition,
                                     render_status_table)
    except ImportError:
        print("error: cannot import repro.telemetry — run with "
              "PYTHONPATH=src from the repo root", file=sys.stderr)
        return 2

    def render() -> int:
        try:
            snapshot = HealthSnapshot.read(args.snapshot)
        except FileNotFoundError:
            print(f"error: no snapshot at {args.snapshot} (is the run "
                  f"writing one?)", file=sys.stderr)
            return 1
        except (json.JSONDecodeError, KeyError, TypeError) as error:
            # A truncated or concurrently-written file must not kill a
            # --watch loop: report it and let the next refresh retry (the
            # writer replaces the file atomically, so the torn read is
            # transient).
            print(f"error: unreadable snapshot at {args.snapshot} "
                  f"({type(error).__name__}: {error}); retrying",
                  file=sys.stderr)
            return 1
        if args.prometheus:
            sys.stdout.write(prometheus_exposition(snapshot.registry()))
        else:
            sys.stdout.write(render_status_table(snapshot))
        sys.stdout.flush()
        return 0

    if args.watch <= 0:
        return render()
    try:
        while True:
            sys.stdout.write("\x1b[2J\x1b[H")  # clear screen, home cursor
            render()
            time.sleep(args.watch)
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
